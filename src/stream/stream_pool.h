// The Stream Pool runtime (paper Section IV-A, Table IV).
//
// The paper builds a software runtime manager on top of CUDA streams so that
// kernel fission does not burden the programmer with low-level stream
// management. This is that library, targeting the simulated device: a pool of
// in-order command streams with availability tracking, command assignment,
// point-to-point synchronization between chosen streams, bulk start/wait, and
// immediate termination.
//
//   API (Table IV)            This implementation
//   ------------------------  ------------------------------------------
//   getAvailableStream()      GetAvailableStream()
//   setStreamCommand()        SetStreamCommand(stream, command)
//   startStreams()            StartStreams()  — runs the timeline
//   waitAll()                 WaitAll()       — returns TimelineStats
//   selectWait(a, b)          SelectWait(a, b) — a waits for b's last command
//   terminate()               Terminate()
//
// Commands may carry an optional host action (a closure) executed when the
// pool starts; actions run in issue order, which respects stream order and
// all declared dependencies because dependencies always point backwards.
#ifndef KF_STREAM_STREAM_POOL_H_
#define KF_STREAM_STREAM_POOL_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/tracer.h"
#include "sim/device_simulator.h"
#include "sim/timeline.h"

namespace kf::stream {

using StreamHandle = int;

struct PoolCommand {
  sim::CommandSpec spec;
  // Optional functional work performed on the host when the pool starts
  // (simulated kernels do their data work host-side; see DESIGN.md §6).
  std::function<void()> action;
};

// Optional tracing attachment. When `tracer` is set, StartStreams() records
// one leaf span per command from the pool's issue-order command list
// (lane "stream <s>"), annotated with faults, stalls, and silent
// corruption from the simulated run. `sim_base` re-bases the run's local
// timeline (retry pools start after the primary run's makespan);
// `parents`/`categories`, when non-empty, are parallel to issue order and
// attach each leaf to its enclosing cluster span / stage category.
struct PoolTraceSink {
  obs::Tracer* tracer = nullptr;
  obs::TraceContext context;
  obs::SpanId parent = 0;
  double sim_base = 0.0;
  std::vector<obs::SpanId> parents;
  std::vector<std::string> categories;
};

class StreamPool {
 public:
  // `stream_count` defaults to 3: enough to saturate a device with two copy
  // engines plus compute (paper: "at least three streams are needed to fully
  // utilize its concurrency capacity"). `metrics` is where StartStreams
  // records pool counters and engine-busy gauges; nullptr means the
  // process-wide default registry. `injector` (optional) injects faults into
  // the simulated run; per-command outcomes surface through WaitAll().
  explicit StreamPool(const sim::DeviceSimulator& device, int stream_count = 3,
                      obs::MetricsRegistry* metrics = nullptr,
                      const sim::FaultInjector* injector = nullptr);

  int stream_count() const { return static_cast<int>(streams_.size()); }

  // Returns a stream with the fewest queued commands, marking it in use.
  StreamHandle GetAvailableStream();

  // Appends `command` to `stream`'s in-order queue. Returns a command id
  // usable with SelectWait/dependencies.
  sim::CommandId SetStreamCommand(StreamHandle stream, PoolCommand command);

  // Makes the *next* command issued to `waiter` wait until the most recently
  // issued command of `signaler` has completed (point-to-point sync).
  void SelectWait(StreamHandle waiter, StreamHandle signaler);

  // Runs all host actions (issue order) and simulates the timeline.
  void StartStreams();

  // Blocks until execution finishes (simulation is synchronous, so this
  // just returns the stats). Throws if StartStreams was not called. The
  // stats carry per-command outcomes: with a fault injector attached,
  // callers must check `stats.AllOk()` / `stats.commands[id].ok` instead of
  // assuming success.
  const sim::TimelineStats& WaitAll() const;

  // Command ids (as returned by SetStreamCommand) that failed in the last
  // run. Empty before StartStreams and on fault-free runs.
  std::vector<sim::CommandId> FailedCommands() const;

  // Command ids that completed "successfully" but delivered wrong bytes in
  // the last run (silent corruption). Ground truth from the injector — the
  // integrity layer must *detect* these via checksums/audits on its own.
  std::vector<sim::CommandId> CorruptedCommands() const;

  // Ends execution immediately: drops all queued commands and results.
  void Terminate();

  bool started() const { return stats_.has_value(); }

  // Attaches a tracing sink for the next StartStreams() (see PoolTraceSink).
  void set_trace(PoolTraceSink sink) { trace_ = std::move(sink); }

 private:
  struct StreamState {
    std::vector<sim::CommandId> issued;           // global ids, issue order
    std::vector<sim::CommandId> pending_waits;    // deps for next command
    bool in_use = false;
  };

  const sim::DeviceSimulator& device_;
  obs::MetricsRegistry* metrics_;
  const sim::FaultInjector* injector_;
  std::vector<StreamState> streams_;
  std::vector<PoolCommand> commands_;             // issue order
  std::vector<sim::StreamId> command_stream_;     // parallel to commands_
  std::optional<sim::TimelineStats> stats_;
  PoolTraceSink trace_;
};

}  // namespace kf::stream

#endif  // KF_STREAM_STREAM_POOL_H_
