#include "stream/stream_pool.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "common/error.h"

namespace kf::stream {

StreamPool::StreamPool(const sim::DeviceSimulator& device, int stream_count,
                       obs::MetricsRegistry* metrics,
                       const sim::FaultInjector* injector)
    : device_(device), metrics_(metrics), injector_(injector) {
  KF_REQUIRE(stream_count > 0) << "stream pool needs at least one stream";
  streams_.resize(static_cast<std::size_t>(stream_count));
}

StreamHandle StreamPool::GetAvailableStream() {
  // Prefer an unused stream; otherwise the one with the shortest queue.
  int best = 0;
  std::size_t best_depth = std::numeric_limits<std::size_t>::max();
  for (int s = 0; s < stream_count(); ++s) {
    const auto& st = streams_[static_cast<std::size_t>(s)];
    if (!st.in_use) {
      streams_[static_cast<std::size_t>(s)].in_use = true;
      return s;
    }
    if (st.issued.size() < best_depth) {
      best_depth = st.issued.size();
      best = s;
    }
  }
  return best;
}

sim::CommandId StreamPool::SetStreamCommand(StreamHandle stream, PoolCommand command) {
  KF_REQUIRE(stream >= 0 && stream < stream_count()) << "bad stream handle " << stream;
  KF_REQUIRE(!started()) << "pool already started; Terminate() before reuse";
  auto& st = streams_[static_cast<std::size_t>(stream)];
  st.in_use = true;
  // Fold in any pending point-to-point waits registered via SelectWait.
  auto& deps = command.spec.dependencies;
  deps.insert(deps.end(), st.pending_waits.begin(), st.pending_waits.end());
  st.pending_waits.clear();

  const sim::CommandId id = commands_.size();
  commands_.push_back(std::move(command));
  command_stream_.push_back(stream);
  st.issued.push_back(id);
  return id;
}

void StreamPool::SelectWait(StreamHandle waiter, StreamHandle signaler) {
  KF_REQUIRE(waiter >= 0 && waiter < stream_count()) << "bad waiter handle " << waiter;
  KF_REQUIRE(signaler >= 0 && signaler < stream_count())
      << "bad signaler handle " << signaler;
  KF_REQUIRE(waiter != signaler) << "a stream cannot wait on itself";
  const auto& sig = streams_[static_cast<std::size_t>(signaler)];
  KF_REQUIRE(!sig.issued.empty())
      << "selectWait: signaling stream " << signaler << " has no commands";
  streams_[static_cast<std::size_t>(waiter)].pending_waits.push_back(sig.issued.back());
}

void StreamPool::StartStreams() {
  KF_REQUIRE(!started()) << "pool already started";
  // Functional work first (issue order respects all dependencies)...
  for (auto& command : commands_) {
    if (command.action) command.action();
  }
  // ...then the timing simulation.
  sim::Timeline timeline = device_.NewTimeline();
  timeline.set_fault_injector(injector_);
  for (std::size_t i = 0; i < commands_.size(); ++i) {
    timeline.AddCommand(command_stream_[i], commands_[i].spec);
  }
  stats_ = timeline.Run();

  // Record the run into the registry: command mix, simulated makespan, and
  // how busy each hardware engine was (gauges hold the most recent run).
  // Devices belonging to a DeviceGroup carry an instance label; their pool
  // series gain a `device` label so per-device utilization stays separable.
  // Standalone devices keep the original unlabeled series.
  obs::MetricsRegistry& m =
      metrics_ != nullptr ? *metrics_ : obs::MetricsRegistry::Default();
  obs::Labels device_labels;
  if (!device_.instance_label().empty()) {
    device_labels.emplace_back("device", device_.instance_label());
  }
  auto with_device = [&](obs::Labels labels) {
    labels.insert(labels.end(), device_labels.begin(), device_labels.end());
    return labels;
  };
  m.GetCounter("stream_pool.runs", device_labels).Increment();
  for (const auto& command : commands_) {
    m.GetCounter("stream_pool.commands",
                 with_device({{"kind", sim::ToString(command.spec.kind)}}))
        .Increment();
  }
  m.GetHistogram("stream_pool.makespan_seconds", device_labels)
      .Record(stats_->makespan);
  m.GetGauge("stream_pool.engine_busy_seconds", with_device({{"engine", "h2d"}}))
      .Set(stats_->h2d_busy);
  m.GetGauge("stream_pool.engine_busy_seconds", with_device({{"engine", "d2h"}}))
      .Set(stats_->d2h_busy);
  m.GetGauge("stream_pool.engine_busy_seconds",
             with_device({{"engine", "compute"}}))
      .Set(stats_->compute_busy);
  m.GetGauge("stream_pool.engine_busy_seconds", with_device({{"engine", "host"}}))
      .Set(stats_->host_busy);
  if (stats_->fault_count > 0) {
    m.GetCounter("stream_pool.faulted_commands", device_labels)
        .Increment(stats_->fault_count);
  }
  if (stats_->stall_count > 0) {
    m.GetCounter("stream_pool.stalled_commands", device_labels)
        .Increment(stats_->stall_count);
  }
  if (stats_->corrupted_count > 0) {
    m.GetCounter("stream_pool.corrupted_commands", device_labels)
        .Increment(stats_->corrupted_count);
  }

  // Per-command leaf spans from the issue-order command list: every stream
  // command becomes a traced leaf carrying its simulated interval and any
  // fault/stall/corruption outcome.
  if (trace_.tracer != nullptr) {
    for (std::size_t i = 0; i < commands_.size(); ++i) {
      const sim::CommandSpec& spec = commands_[i].spec;
      const sim::CommandTiming& timing = stats_->commands[i];
      const obs::SpanId parent =
          i < trace_.parents.size() && trace_.parents[i] != 0
              ? trace_.parents[i]
              : trace_.parent;
      std::string category =
          i < trace_.categories.size() ? trace_.categories[i] : std::string();
      const std::string label =
          spec.label.empty() ? sim::ToString(spec.kind) : spec.label;
      const std::string lane =
          "stream " + std::to_string(command_stream_[i]);
      const obs::SpanId leaf = trace_.tracer->AddSpan(
          trace_.context, parent, label, lane,
          trace_.sim_base + timing.start, trace_.sim_base + timing.end,
          std::move(category));
      if (timing.fault != sim::FaultKind::kNone) {
        const bool stall = timing.fault == sim::FaultKind::kStreamStall;
        trace_.tracer->Annotate(trace_.context, leaf,
                                stall ? obs::SpanAnnotationKind::kStall
                                      : obs::SpanAnnotationKind::kFault,
                                sim::ToString(timing.fault),
                                trace_.sim_base + timing.end);
      }
      if (timing.corrupted) {
        trace_.tracer->Annotate(trace_.context, leaf,
                                obs::SpanAnnotationKind::kCorruption,
                                "silent corruption",
                                trace_.sim_base + timing.end);
      }
    }
  }
}

const sim::TimelineStats& StreamPool::WaitAll() const {
  KF_REQUIRE(started()) << "waitAll before startStreams";
  return *stats_;
}

std::vector<sim::CommandId> StreamPool::FailedCommands() const {
  std::vector<sim::CommandId> failed;
  if (!stats_.has_value()) return failed;
  for (sim::CommandId id = 0; id < stats_->commands.size(); ++id) {
    if (!stats_->commands[id].ok) failed.push_back(id);
  }
  return failed;
}

std::vector<sim::CommandId> StreamPool::CorruptedCommands() const {
  std::vector<sim::CommandId> corrupted;
  if (!stats_.has_value()) return corrupted;
  for (sim::CommandId id = 0; id < stats_->commands.size(); ++id) {
    if (stats_->commands[id].corrupted) corrupted.push_back(id);
  }
  return corrupted;
}

void StreamPool::Terminate() {
  for (auto& st : streams_) {
    st.issued.clear();
    st.pending_waits.clear();
    st.in_use = false;
  }
  commands_.clear();
  command_stream_.clear();
  stats_.reset();
}

}  // namespace kf::stream
