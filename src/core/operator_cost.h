// Cost profiles for staged RA operators — unfused and fused.
//
// Converts an operator (or a whole fusion cluster) plus *realized* data sizes
// into the `sim::KernelProfile`s the device cost model understands. This is
// where the structural facts behind the paper's measurements live:
//
//   * an unfused staged operator is two device kernels — compute (partition +
//     filter/probe/map + buffer) and gather — each reading and writing its
//     full data through device global memory;
//   * a fused cluster is ONE compute kernel that reads the streamed input
//     once, keeps every intermediate in registers, and buffers only rows
//     that leave the cluster, plus ONE gather kernel over the final output
//     (Fig 6). The traffic that disappears — the intermediates' stores and
//     reloads, and the extra partition/gather passes — is precisely benefits
//     (c)/(e) of Fig 7, and the launch count drops from 2k to 2.
//
// SORT is modeled as an LSD radix sort (4 passes over key+payload), matching
// the GPU sorting literature the paper builds on.
#ifndef KF_CORE_OPERATOR_COST_H_
#define KF_CORE_OPERATOR_COST_H_

#include <cstdint>
#include <vector>

#include "core/fusion_planner.h"
#include "core/op_graph.h"
#include "sim/kernel_cost_model.h"

namespace kf::core {

struct OperatorCostConfig {
  // Launch geometry of a staged kernel (paper-style: enough CTAs/threads to
  // saturate a Fermi).
  int cta_count = 448;
  int threads_per_cta = 256;

  // Memory-access efficiency of the compute stage (buffered writes are not
  // perfectly coalesced) and of the gather stage (positioned block copies).
  double compute_access_efficiency = 0.55;
  double gather_access_efficiency = 0.70;
  // Hash probes are random access.
  double probe_access_efficiency = 0.35;

  // Baseline dynamic ops per element of the staged-kernel skeleton:
  // partition arithmetic, the intra-CTA compaction scans that position
  // matches in the buffer, and cursor maintenance — a few dozen scalar ops
  // per element in the real implementation. Calibrated so the staged SELECT
  // lands in Fig 4(a)'s throughput band across selectivities.
  double base_ops_per_element = 40.0;

  // Radix-sort passes: 8-bit digits over the 64-bit composite sort key the
  // row sorts of the TPC-H plans use.
  int sort_passes = 8;
  // Radix scatter writes are random access.
  double sort_access_efficiency = 0.35;
};

// Realized sizes of one operator execution.
struct RealizedSizes {
  std::uint64_t input_rows = 0;
  std::uint64_t input_row_bytes = 0;   // bytes per streamed input row
  std::uint64_t output_rows = 0;
  std::uint64_t output_row_bytes = 0;
  std::uint64_t build_bytes = 0;       // materialized JOIN/PRODUCT build side
};

class OperatorCostModel {
 public:
  explicit OperatorCostModel(OperatorCostConfig config = {}) : config_(config) {}

  const OperatorCostConfig& config() const { return config_; }

  // Kernel profiles for running `node` as its own (unfused) staged operator.
  std::vector<sim::KernelProfile> UnfusedProfiles(const OpNode& node,
                                                  const RealizedSizes& sizes) const;

  // Kernel profiles (compute + gather) for running `cluster` as one fused
  // kernel. `per_member` maps each member node (cluster order) to its
  // realized sizes; the primary input sizes come from the first member.
  std::vector<sim::KernelProfile> FusedProfiles(
      const OpGraph& graph, const FusionCluster& cluster,
      const std::vector<RealizedSizes>& per_member) const;

 private:
  sim::KernelProfile BaseProfile(std::string label, std::uint64_t elements) const;

  OperatorCostConfig config_;
};

}  // namespace kf::core

#endif  // KF_CORE_OPERATOR_COST_H_
