#include "core/plan_dot.h"

#include <sstream>

namespace kf::core {

namespace {

std::string EscapeDot(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void EmitNode(std::ostream& os, const OpNode& node, const char* indent) {
  os << indent << "n" << node.id << " [label=\"" << EscapeDot(node.name) << "\"";
  if (node.is_source) {
    os << ", shape=cylinder, fillcolor=\"#e8f0fe\", style=filled";
  } else {
    os << ", shape=box, style=rounded";
  }
  os << "];\n";
}

void EmitEdges(std::ostream& os, const OpGraph& graph) {
  for (NodeId id = 0; id < graph.node_count(); ++id) {
    const OpNode& node = graph.node(id);
    for (std::size_t i = 0; i < node.inputs.size(); ++i) {
      os << "  n" << node.inputs[i] << " -> n" << id;
      if (node.inputs.size() > 1) {
        os << " [label=\"" << (i == 0 ? "probe" : "build") << "\"]";
      }
      os << ";\n";
    }
  }
}

}  // namespace

std::string ToDot(const OpGraph& graph) {
  std::ostringstream os;
  os << "digraph plan {\n  rankdir=TB;\n";
  for (NodeId id = 0; id < graph.node_count(); ++id) {
    EmitNode(os, graph.node(id), "  ");
  }
  EmitEdges(os, graph);
  os << "}\n";
  return os.str();
}

std::string ToDot(const OpGraph& graph, const FusionPlan& plan) {
  std::ostringstream os;
  os << "digraph plan {\n  rankdir=TB;\n  compound=true;\n";
  for (NodeId id : graph.Sources()) {
    EmitNode(os, graph.node(id), "  ");
  }
  for (std::size_t c = 0; c < plan.clusters.size(); ++c) {
    const FusionCluster& cluster = plan.clusters[c];
    os << "  subgraph cluster_" << c << " {\n"
       << "    label=\"" << (cluster.fused() ? "fused kernel " : "kernel ") << c
       << " (regs " << cluster.register_estimate << ")\";\n"
       << "    style=filled;\n    fillcolor=\""
       << (cluster.fused() ? "#d7f0d7" : "#f2f2f2") << "\";\n";
    for (NodeId member : cluster.nodes) {
      EmitNode(os, graph.node(member), "    ");
    }
    os << "  }\n";
  }
  EmitEdges(os, graph);
  os << "}\n";
  return os.str();
}

}  // namespace kf::core
