#include "core/expr_lower.h"

#include <map>

#include "common/error.h"
#include "ir/builder.h"

namespace kf::core {

using relational::Expr;
using relational::ExprOp;

namespace {

// Lowering context: one load per referenced field, cached.
struct LowerContext {
  ir::Function* function = nullptr;
  ir::IrBuilder* builder = nullptr;
  std::map<int, ir::ValueId> field_slots;   // field index -> kPtr param
  std::map<int, ir::ValueId> field_loads;   // field index -> loaded register
};

ir::ValueId FieldSlot(LowerContext& ctx, int field) {
  auto it = ctx.field_slots.find(field);
  if (it != ctx.field_slots.end()) return it->second;
  const ir::ValueId slot =
      ctx.function->AddParam(ir::Type::kPtr, "f" + std::to_string(field));
  ctx.field_slots.emplace(field, slot);
  return slot;
}

ir::ValueId FieldLoad(LowerContext& ctx, int field) {
  auto it = ctx.field_loads.find(field);
  if (it != ctx.field_loads.end()) return it->second;
  const ir::ValueId reg = ctx.builder->Load(ir::Type::kI32, FieldSlot(ctx, field));
  ctx.field_loads.emplace(field, reg);
  return reg;
}

ir::Opcode ToIrOpcode(ExprOp op) {
  switch (op) {
    case ExprOp::kAdd: return ir::Opcode::kAdd;
    case ExprOp::kSub: return ir::Opcode::kSub;
    case ExprOp::kMul: return ir::Opcode::kMul;
    case ExprOp::kDiv: return ir::Opcode::kDiv;
    case ExprOp::kLt: return ir::Opcode::kSetLt;
    case ExprOp::kLe: return ir::Opcode::kSetLe;
    case ExprOp::kGt: return ir::Opcode::kSetGt;
    case ExprOp::kGe: return ir::Opcode::kSetGe;
    case ExprOp::kEq: return ir::Opcode::kSetEq;
    case ExprOp::kNe: return ir::Opcode::kSetNe;
    case ExprOp::kAnd: return ir::Opcode::kAnd;
    case ExprOp::kOr: return ir::Opcode::kOr;
    case ExprOp::kNot: return ir::Opcode::kNot;
    default:
      KF_REQUIRE(false) << "expression op has no IR opcode";
      return ir::Opcode::kMov;
  }
}

ir::ValueId LowerExpr(LowerContext& ctx, const Expr& expr) {
  switch (expr.op) {
    case ExprOp::kConst:
      if (expr.constant.is_float()) {
        return ctx.function->AddConstFloat(ir::Type::kF64, expr.constant.as_double());
      }
      return ctx.function->AddConstInt(ir::Type::kI32, expr.constant.as_int());
    case ExprOp::kField:
      return FieldLoad(ctx, expr.field);
    case ExprOp::kAdd:
    case ExprOp::kSub:
    case ExprOp::kMul:
    case ExprOp::kDiv: {
      const ir::ValueId lhs = LowerExpr(ctx, expr.children[0]);
      const ir::ValueId rhs = LowerExpr(ctx, expr.children[1]);
      return ctx.builder->Binary(ToIrOpcode(expr.op), ir::Type::kI32, lhs, rhs);
    }
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe:
    case ExprOp::kEq:
    case ExprOp::kNe: {
      const ir::ValueId lhs = LowerExpr(ctx, expr.children[0]);
      const ir::ValueId rhs = LowerExpr(ctx, expr.children[1]);
      return ctx.builder->Compare(ToIrOpcode(expr.op), lhs, rhs);
    }
    case ExprOp::kAnd:
    case ExprOp::kOr: {
      const ir::ValueId lhs = LowerExpr(ctx, expr.children[0]);
      const ir::ValueId rhs = LowerExpr(ctx, expr.children[1]);
      return ctx.builder->Binary(ToIrOpcode(expr.op), ir::Type::kPred, lhs, rhs);
    }
    case ExprOp::kNot:
      return ctx.builder->NotOf(LowerExpr(ctx, expr.children[0]));
  }
  KF_REQUIRE(false) << "unhandled expression op";
  return ir::kNoValue;
}

}  // namespace

ir::Function LowerSelectFilter(const std::string& name, const Expr& predicate,
                               bool materialize_constants) {
  ir::Function function(name);
  ir::IrBuilder builder(function, materialize_constants);
  LowerContext ctx{&function, &builder, {}, {}};

  const ir::BlockId entry = builder.CreateBlock("entry");
  const ir::BlockId matched = builder.CreateBlock("matched");
  const ir::BlockId exit = builder.CreateBlock("exit");
  const ir::ValueId out = function.AddParam(ir::Type::kPtr, "out");

  builder.SetInsertBlock(entry);
  const ir::ValueId pred = LowerExpr(ctx, predicate);
  builder.Branch(pred, matched, exit);

  builder.SetInsertBlock(matched);
  // Store the referenced fields of the matching element (field 0 when the
  // predicate is constant-only).
  if (ctx.field_loads.empty()) FieldLoad(ctx, 0);
  // Loads belong to the entry block; the builder emitted them there already.
  for (const auto& [field, reg] : ctx.field_loads) {
    (void)field;
    builder.Store(out, reg);
  }
  builder.Jump(exit);

  builder.SetInsertBlock(exit);
  builder.Ret();
  function.Verify();
  return function;
}

ir::Function LowerFusedSelectFilters(const std::string& name,
                                     std::span<const Expr> predicates,
                                     bool materialize_constants) {
  KF_REQUIRE_AS(::kf::InvalidArgument, !predicates.empty()) << "no predicates to lower";
  ir::Function function(name);
  ir::IrBuilder builder(function, materialize_constants);
  LowerContext ctx{&function, &builder, {}, {}};
  const ir::ValueId out = function.AddParam(ir::Type::kPtr, "out");

  const ir::BlockId entry = builder.CreateBlock("entry");
  std::vector<ir::BlockId> levels;
  for (std::size_t i = 1; i < predicates.size(); ++i) {
    levels.push_back(builder.CreateBlock("pass" + std::to_string(i)));
  }
  const ir::BlockId matched = builder.CreateBlock("matched");
  const ir::BlockId exit = builder.CreateBlock("exit");

  builder.SetInsertBlock(entry);
  for (std::size_t i = 0; i < predicates.size(); ++i) {
    const ir::ValueId pred = LowerExpr(ctx, predicates[i]);
    const ir::BlockId next = i + 1 < predicates.size() ? levels[i] : matched;
    builder.Branch(pred, next, exit);
    builder.SetInsertBlock(next);
  }
  if (ctx.field_loads.empty()) {
    // Degenerate constant predicates: still store field 0. The load must
    // live in the entry block to dominate its use; lower it there.
    // (Never happens for real chains; kept for robustness.)
    builder.SetInsertBlock(entry);
    FieldLoad(ctx, 0);
    builder.SetInsertBlock(matched);
  }
  for (const auto& [field, reg] : ctx.field_loads) {
    (void)field;
    builder.Store(out, reg);
  }
  builder.Jump(exit);

  builder.SetInsertBlock(exit);
  builder.Ret();
  function.Verify();
  return function;
}

ir::Function LowerArithMap(const std::string& name, const Expr& expr,
                           bool materialize_constants) {
  ir::Function function(name);
  ir::IrBuilder builder(function, materialize_constants);
  LowerContext ctx{&function, &builder, {}, {}};
  const ir::ValueId out = function.AddParam(ir::Type::kPtr, "out");

  const ir::BlockId entry = builder.CreateBlock("entry");
  builder.SetInsertBlock(entry);
  const ir::ValueId result = LowerExpr(ctx, expr);
  builder.Store(out, result);
  builder.Ret();
  function.Verify();
  return function;
}

}  // namespace kf::core
