#include "core/multi_device.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <set>
#include <utility>

#include "common/error.h"

namespace kf::core {

namespace {

using relational::OpKind;
using relational::Table;

// The relation sharding row-slices: every sink's probe-side (inputs[0])
// chain must reach it through SELECT/ARITH/JOIN nodes, every JOIN build
// side must be a source (broadcast whole to each device), and the shard
// source itself must not feed a build side (slicing a build input would
// drop join matches). Returns nullopt when no such source exists.
std::optional<NodeId> FindShardSource(const OpGraph& graph) {
  const std::vector<NodeId> sinks = graph.Sinks();
  if (sinks.empty()) return std::nullopt;
  NodeId shard_source = kNoNode;
  for (NodeId sink : sinks) {
    NodeId cur = sink;
    while (!graph.node(cur).is_source) {
      const OpNode& node = graph.node(cur);
      const OpKind kind = node.desc.kind;
      if (kind != OpKind::kSelect && kind != OpKind::kArith &&
          kind != OpKind::kJoin) {
        return std::nullopt;
      }
      if (kind == OpKind::kJoin &&
          (node.inputs.size() < 2 || !graph.node(node.inputs[1]).is_source)) {
        return std::nullopt;
      }
      cur = node.inputs[0];
    }
    if (shard_source == kNoNode) {
      shard_source = cur;
    } else if (shard_source != cur) {
      return std::nullopt;
    }
  }
  for (NodeId id = 0; id < static_cast<NodeId>(graph.node_count()); ++id) {
    const OpNode& node = graph.node(id);
    if (node.inputs.size() > 1 && node.inputs[1] == shard_source) {
      return std::nullopt;
    }
  }
  return shard_source;
}

// Nodes whose row counts scale with the shard fraction: the shard source
// plus every node on a sink's probe-side chain.
std::set<NodeId> ShardScaledNodes(const OpGraph& graph, NodeId shard_source) {
  std::set<NodeId> scaled;
  scaled.insert(shard_source);
  for (NodeId sink : graph.Sinks()) {
    NodeId cur = sink;
    while (!graph.node(cur).is_source) {
      scaled.insert(cur);
      cur = graph.node(cur).inputs[0];
    }
  }
  return scaled;
}

Table SliceRows(const Table& table, std::uint64_t begin, std::uint64_t end) {
  Table out(table.schema());
  out.Reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t r = begin; r < end; ++r) {
    out.AppendRow(table.GetRow(static_cast<std::size_t>(r)));
  }
  return out;
}

// One shard's assignment: a contiguous row range of the shard source.
struct ShardSlot {
  int device = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

}  // namespace

const char* ToString(ShardSplit split) {
  switch (split) {
    case ShardSplit::kStatic: return "static";
    case ShardSplit::kBytesProportional: return "bytes_proportional";
  }
  return "unknown";
}

bool MultiDeviceExecutor::Shardable(const OpGraph& graph) {
  return FindShardSource(graph).has_value();
}

std::vector<int> MultiDeviceExecutor::ActiveDevices(
    const MultiDeviceOptions& options) const {
  std::vector<int> active = options.devices;
  if (active.empty()) {
    for (int i = 0; i < group_.device_count(); ++i) active.push_back(i);
  }
  std::set<int> seen;
  for (int d : active) {
    KF_REQUIRE_AS(::kf::InvalidArgument, d >= 0 && d < group_.device_count())
        << "device index " << d << " out of range (group has "
        << group_.device_count() << ")";
    KF_REQUIRE_AS(::kf::InvalidArgument, seen.insert(d).second)
        << "device index " << d << " listed twice";
  }
  return active;
}

const sim::FaultInjector* MultiDeviceExecutor::InjectorFor(
    int device, const MultiDeviceOptions& options) const {
  const auto& injectors = options.per_device_injectors;
  if (device < static_cast<int>(injectors.size()) &&
      injectors[static_cast<std::size_t>(device)] != nullptr) {
    return injectors[static_cast<std::size_t>(device)];
  }
  return options.base.fault_injector;
}

CostModelCalibrator* MultiDeviceExecutor::CalibrationFor(
    int device, const MultiDeviceOptions& options) const {
  const auto& calibrations = options.per_device_calibrations;
  if (device < static_cast<int>(calibrations.size()) &&
      calibrations[static_cast<std::size_t>(device)] != nullptr) {
    return calibrations[static_cast<std::size_t>(device)];
  }
  return options.base.calibration;
}

std::vector<std::uint64_t> MultiDeviceExecutor::ShardBounds(
    std::uint64_t total_rows, const std::vector<int>& devices,
    ShardSplit split) const {
  const std::size_t n = devices.size();
  std::vector<std::uint64_t> bounds(n + 1, 0);
  bounds[n] = total_rows;
  if (split == ShardSplit::kStatic) {
    const std::uint64_t base = total_rows / n;
    const std::uint64_t remainder = total_rows % n;
    for (std::size_t k = 1; k < n; ++k) {
      bounds[k] = bounds[k - 1] + base + (k <= remainder ? 1 : 0);
    }
  } else {
    const std::vector<double> all_weights = group_.BandwidthWeights();
    double total_weight = 0.0;
    for (int d : devices) total_weight += all_weights[static_cast<std::size_t>(d)];
    KF_REQUIRE_AS(::kf::InvalidArgument, total_weight > 0)
        << "device bandwidth weights must be positive";
    // Cumulative rounding keeps every boundary within one row of the exact
    // proportional point, so shard sizes never drift with device count.
    double cumulative = 0.0;
    for (std::size_t k = 1; k < n; ++k) {
      cumulative += all_weights[static_cast<std::size_t>(devices[k - 1])];
      const double exact = static_cast<double>(total_rows) * cumulative / total_weight;
      const auto boundary = static_cast<std::uint64_t>(std::llround(exact));
      bounds[k] = std::clamp(boundary, bounds[k - 1], total_rows);
    }
  }
  return bounds;
}

MultiDeviceReport MultiDeviceExecutor::Execute(
    const OpGraph& graph, const std::map<NodeId, relational::Table>& sources,
    const MultiDeviceOptions& options) const {
  return Run(graph, &sources, {}, options);
}

MultiDeviceReport MultiDeviceExecutor::EstimateOnly(
    const OpGraph& graph, const std::map<NodeId, std::uint64_t>& row_counts,
    const MultiDeviceOptions& options) const {
  return Run(graph, nullptr, row_counts, options);
}

MultiDeviceReport MultiDeviceExecutor::Run(
    const OpGraph& graph, const std::map<NodeId, relational::Table>* sources,
    const std::map<NodeId, std::uint64_t>& row_counts,
    const MultiDeviceOptions& options) const {
  const std::vector<int> active = ActiveDevices(options);
  obs::MetricsRegistry& gm = options.base.metrics != nullptr
                                 ? *options.base.metrics
                                 : group_.metrics();

  // Single-device execution on group device `idx` (also the host-fallback
  // vehicle). Uses the persistent device directly — no contention, no
  // slicing — so one active device degenerates to QueryExecutor exactly.
  std::function<MultiDeviceReport(int, bool)> run_single =
      [&](int idx, bool force_host) -> MultiDeviceReport {
    ExecutorOptions opts = options.base;
    opts.fault_injector = InjectorFor(idx, options);
    opts.calibration = CalibrationFor(idx, options);
    opts.trace.device = idx;
    if (force_host) {
      opts.force_host = true;
      opts.fault_injector = nullptr;  // the host engine has no device faults
    }
    QueryExecutor executor(group_.device(idx), cost_model_, pool_);
    MultiDeviceReport out;
    ShardReport shard;
    shard.device = idx;
    try {
      shard.report = sources != nullptr
                         ? executor.Execute(graph, *sources, opts)
                         : executor.EstimateOnly(graph, row_counts, opts);
    } catch (const kf::CapacityExceeded&) {
      if (force_host || !options.allow_host_fallback) throw;
      gm.GetCounter("sim.group.host_fallbacks").Increment();
      if (options.base.tracer != nullptr) {
        options.base.tracer->Annotate(
            options.base.trace, 0, obs::SpanAnnotationKind::kDegraded,
            "group host fallback: device capacity exceeded", 0.0);
      }
      MultiDeviceReport fallback = run_single(idx, /*force_host=*/true);
      fallback.host_fallback = true;
      return fallback;
    }
    out.combined = shard.report;
    shard.rows = 0;
    out.shards.push_back(std::move(shard));
    out.devices_used = 1;
    return out;
  };

  const std::optional<NodeId> shard_source = FindShardSource(graph);
  if (!shard_source.has_value() || active.size() < 2) {
    return run_single(active.front(), /*force_host=*/false);
  }

  // Shard-source row count: the bound table in functional mode, the
  // caller's override (falling back to the row hint) in estimate mode.
  std::uint64_t total_rows = 0;
  if (sources != nullptr) {
    total_rows = sources->at(*shard_source).row_count();
  } else {
    auto it = row_counts.find(*shard_source);
    total_rows =
        it != row_counts.end() ? it->second : graph.node(*shard_source).row_hint;
  }

  const std::vector<std::uint64_t> bounds =
      ShardBounds(total_rows, active, options.split);
  std::vector<ShardSlot> slots;
  for (std::size_t k = 0; k < active.size(); ++k) {
    if (bounds[k + 1] > bounds[k]) {
      slots.push_back({active[k], bounds[k], bounds[k + 1]});
    }
  }
  // More devices than rows (or an empty input) leaves fewer populated
  // shards than devices; one or zero shards is just a single-device run.
  if (slots.size() < 2) {
    return run_single(slots.empty() ? active.front() : slots.front().device,
                      /*force_host=*/false);
  }

  const int devices_used = static_cast<int>(slots.size());
  const double derating = group_.TransferDerating(devices_used);
  const std::set<NodeId> scaled_nodes = ShardScaledNodes(graph, *shard_source);

  std::vector<ShardReport> shards;
  shards.reserve(slots.size());
  try {
    for (const ShardSlot& slot : slots) {
      const sim::DeviceSimulator view =
          group_.ContendedView(slot.device, devices_used);
      QueryExecutor executor(view, cost_model_, pool_);
      ExecutorOptions opts = options.base;
      opts.fault_injector = InjectorFor(slot.device, options);
      opts.calibration = CalibrationFor(slot.device, options);
      // Shard tracing: each shard's execute span carries its device and
      // shard index, so the session exporter links them back to the query
      // with flow events.
      opts.trace.device = slot.device;
      opts.trace.shard = static_cast<int>(shards.size());

      ShardReport shard;
      shard.device = slot.device;
      shard.rows = slot.end - slot.begin;
      if (sources != nullptr) {
        std::map<NodeId, Table> shard_sources;
        for (const auto& [id, table] : *sources) {
          if (id == *shard_source) {
            shard_sources.emplace(id, SliceRows(table, slot.begin, slot.end));
          } else {
            shard_sources.emplace(id, table);  // broadcast build tables whole
          }
        }
        shard.report = executor.Execute(graph, shard_sources, opts);
      } else {
        const double fraction =
            total_rows > 0
                ? static_cast<double>(shard.rows) / static_cast<double>(total_rows)
                : 0.0;
        std::map<NodeId, std::uint64_t> shard_counts = row_counts;
        for (NodeId id : scaled_nodes) {
          auto it = row_counts.find(id);
          const std::uint64_t full =
              it != row_counts.end()
                  ? it->second
                  : (graph.node(id).is_source ? graph.node(id).row_hint : 0);
          if (id == *shard_source) {
            shard_counts[id] = shard.rows;
          } else if (it != row_counts.end() || graph.node(id).is_source) {
            shard_counts[id] = static_cast<std::uint64_t>(
                std::llround(static_cast<double>(full) * fraction));
          }
        }
        shard.report = executor.EstimateOnly(graph, shard_counts, opts);
      }
      shards.push_back(std::move(shard));
    }
  } catch (const kf::CapacityExceeded&) {
    // Group-wide capacity failure: a shard's working set cannot fit even
    // after the executor's own segmentation. Degrade the whole query to
    // the host engine rather than failing it.
    if (!options.allow_host_fallback) throw;
    gm.GetCounter("sim.group.host_fallbacks").Increment();
    if (options.base.tracer != nullptr) {
      options.base.tracer->Annotate(
          options.base.trace, 0, obs::SpanAnnotationKind::kDegraded,
          "group host fallback: a shard exceeded device capacity", 0.0);
    }
    MultiDeviceReport fallback = run_single(active.front(), /*force_host=*/true);
    fallback.host_fallback = true;
    return fallback;
  }

  // --- Combine: slowest shard bounds the group makespan; traffic and fault
  // counters sum; results concatenate in shard (device) order. -------------
  std::size_t slowest = 0;
  for (std::size_t i = 1; i < shards.size(); ++i) {
    if (shards[i].report.makespan > shards[slowest].report.makespan) slowest = i;
  }

  MultiDeviceReport out;
  out.combined = shards[slowest].report;
  out.devices_used = devices_used;
  out.sharded = true;
  out.transfer_derating = derating;

  ExecutionReport& combined = out.combined;
  combined.input_output_time = combined.round_trip_time = 0.0;
  combined.compute_time = combined.host_gather_time = 0.0;
  combined.backoff_time = 0.0;
  combined.h2d_bytes = combined.d2h_bytes = 0;
  combined.peak_device_bytes = combined.leaked_device_bytes = 0;
  combined.kernel_launches = combined.spill_count = 0;
  combined.fault_count = combined.retried_units = combined.retry_attempts = 0;
  combined.degraded_clusters = 0;
  combined.degraded = combined.ran_on_host = false;
  combined.corrupted_commands = combined.corruption_detected = 0;
  combined.corruption_undetected = combined.corruption_reexecutions = 0;
  combined.audited_clusters = 0;
  combined.silent_corruption = false;
  combined.integrity_time = 0.0;
  SimTime max_makespan = 0.0;
  for (const ShardReport& shard : shards) {
    const ExecutionReport& r = shard.report;
    max_makespan = std::max(max_makespan, r.makespan);
    combined.input_output_time += r.input_output_time;
    combined.round_trip_time += r.round_trip_time;
    combined.compute_time += r.compute_time;
    combined.host_gather_time += r.host_gather_time;
    combined.backoff_time += r.backoff_time;
    combined.h2d_bytes += r.h2d_bytes;
    combined.d2h_bytes += r.d2h_bytes;
    combined.peak_device_bytes = std::max(combined.peak_device_bytes, r.peak_device_bytes);
    combined.leaked_device_bytes += r.leaked_device_bytes;
    combined.kernel_launches += r.kernel_launches;
    combined.spill_count += r.spill_count;
    combined.fault_count += r.fault_count;
    combined.retried_units += r.retried_units;
    combined.retry_attempts += r.retry_attempts;
    combined.degraded_clusters += r.degraded_clusters;
    combined.degraded = combined.degraded || r.degraded;
    combined.ran_on_host = combined.ran_on_host || r.ran_on_host;
    combined.corrupted_commands += r.corrupted_commands;
    combined.corruption_detected += r.corruption_detected;
    combined.corruption_undetected += r.corruption_undetected;
    combined.corruption_reexecutions += r.corruption_reexecutions;
    combined.audited_clusters += r.audited_clusters;
    combined.silent_corruption = combined.silent_corruption || r.silent_corruption;
    combined.integrity_time += r.integrity_time;
  }

  // Cross-device gather: the host concatenates every shard's sink rows into
  // the final result. One streaming pass over the result bytes — shards
  // arrive in order, so unlike the fission reorder gather of Fig 15 there is
  // no second permutation pass.
  std::uint64_t sink_bytes = 0;
  if (sources != nullptr) {
    combined.sink_results.clear();
    for (NodeId sink : graph.Sinks()) {
      Table merged(graph.node(sink).schema);
      std::size_t rows = 0;
      for (const ShardReport& shard : shards) {
        rows += shard.report.sink_results.at(sink).row_count();
      }
      merged.Reserve(rows);
      for (const ShardReport& shard : shards) {
        const Table& part = shard.report.sink_results.at(sink);
        for (std::size_t r = 0; r < part.row_count(); ++r) {
          merged.AppendRow(part.GetRow(r));
        }
      }
      sink_bytes += merged.byte_size();
      combined.sink_results.emplace(sink, std::move(merged));
    }
  } else {
    for (NodeId sink : graph.Sinks()) {
      auto it = row_counts.find(sink);
      const std::uint64_t rows = it != row_counts.end() ? it->second : total_rows;
      sink_bytes += rows * graph.node(sink).schema.row_width_bytes();
    }
  }
  out.gather_time =
      group_.device(active.front())
          .MakeHostWork(sink_bytes, "multi_device gather")
          .duration;
  // Gather verification: with checksummed transfers on, the host re-verifies
  // every shard's sink bytes as it concatenates them (a second streaming
  // pass), so cross-device assembly is covered end to end.
  if (options.base.integrity.verify_transfers && sink_bytes > 0) {
    const SimTime verify_time =
        group_.device(active.front())
            .MakeHostWork(sink_bytes, "multi_device gather verify")
            .duration;
    out.gather_time += verify_time;
    combined.integrity_time += verify_time;
    gm.GetHistogram("sim.group.gather_checksum_seconds").Record(verify_time);
  }
  combined.makespan = max_makespan + out.gather_time;
  combined.host_gather_time += out.gather_time;

  // Cross-device gather span: the host-side concatenation (and optional
  // verification) that serializes after the slowest shard.
  if (options.base.tracer != nullptr) {
    obs::TraceContext gather_ctx = options.base.trace;
    gather_ctx.device = active.front();
    options.base.tracer->AddSpan(gather_ctx, options.base.trace_parent,
                                 "multi-device gather", "host", max_makespan,
                                 combined.makespan, "host_gather");
  }

  gm.GetCounter("sim.group.sharded_runs").Increment();
  gm.GetGauge("sim.group.devices_used").Set(static_cast<double>(devices_used));
  gm.GetHistogram("sim.group.gather_seconds").Record(out.gather_time);
  for (const ShardReport& shard : shards) {
    const std::string& label = group_.device(shard.device).instance_label();
    gm.GetCounter("sim.group.shard_rows", {{"device", label}})
        .Increment(shard.rows);
    gm.GetHistogram("sim.group.shard_makespan_seconds", {{"device", label}})
        .Record(shard.report.makespan);
  }

  out.shards = std::move(shards);
  return out;
}

}  // namespace kf::core
