// Cross-query kernel fusion (paper Section III-A): "there are opportunities
// to apply kernel fusion across queries since RA operators from different
// queries can be fused."
//
// `MergeGraphs` splices a second query's operator graph into a first,
// unifying source nodes by name. Operators from both queries that stream the
// same relation then land in one fusion cluster (the planner's pattern-(c)
// rule), so one scan of the shared table feeds every query — a shared-scan /
// multi-query optimization expressed purely as kernel fusion.
#ifndef KF_CORE_GRAPH_MERGE_H_
#define KF_CORE_GRAPH_MERGE_H_

#include <map>

#include "core/op_graph.h"

namespace kf::core {

struct MergeResult {
  OpGraph graph;
  // Node ids of the first / second input graph mapped into the merged graph.
  std::map<NodeId, NodeId> first_mapping;
  std::map<NodeId, NodeId> second_mapping;
};

// Merges `second` into `first`. Sources with the same name are unified
// (their schemas must match); everything else is copied. Throws kf::Error
// on same-name sources with different schemas.
MergeResult MergeGraphs(const OpGraph& first, const OpGraph& second);

}  // namespace kf::core

#endif  // KF_CORE_GRAPH_MERGE_H_
