// Heterogeneous placement of fused kernels (paper Section III-C, closing
// paragraph): "if using an execution model translator such as Ocelot, it is
// possible to execute fused kernels on both the CPU and GPU to fully
// utilize the available computation power. This is the subject of ongoing
// research." This module implements that ongoing-research piece for the
// simulated machine: a cost-based placement decision per fusion cluster.
//
// The trade is exactly the one the paper's Figure 1 sets up: the device is
// ~10x faster at streaming computation, but host-resident inputs must cross
// PCIe to reach it. Small clusters therefore run cheaper on the host (the
// translated fused kernel over the host thread pool); large streaming
// clusters belong on the device. The crossover is a few megabytes.
#ifndef KF_CORE_HETERO_H_
#define KF_CORE_HETERO_H_

#include "core/fusion_planner.h"
#include "core/operator_cost.h"
#include "sim/device_simulator.h"

namespace kf::core {

class CostModelCalibrator;

enum class Placement : std::uint8_t { kDevice, kHost };
const char* ToString(Placement placement);

struct HostCostConfig {
  // The translated fused kernel on the 16-thread host (Ocelot-style):
  // sustained memory bandwidth and scalar op rate.
  double host_mem_bandwidth_gbs = 12.0;
  double host_ops_per_second = 3.0e10;  // 8 cores x 2.27 GHz x ~1.65 IPC
  // Parallel-section launch overhead.
  SimTime dispatch_overhead = 20.0 * kMicrosecond;
};

struct PlacementDecision {
  Placement placement = Placement::kDevice;
  // Cluster execution time on each engine, including the transfers that
  // placement implies (host-resident input: H2D+D2H for device placement,
  // nothing for host placement).
  SimTime device_time = 0.0;
  SimTime host_time = 0.0;
};

class HeterogeneousScheduler {
 public:
  HeterogeneousScheduler(const sim::DeviceSimulator& device,
                         OperatorCostModel cost_model = OperatorCostModel{},
                         HostCostConfig host = HostCostConfig{})
      : device_(device), cost_model_(std::move(cost_model)), host_(host) {}

  // Decides where one fused cluster should run. `input_on_host` says whether
  // the streamed input currently lives in host memory (true for sources);
  // `output_to_host` whether the result must end up there (true for sinks).
  PlacementDecision Decide(const OpGraph& graph, const FusionCluster& cluster,
                           const std::vector<RealizedSizes>& member_sizes,
                           bool input_on_host = true,
                           bool output_to_host = true) const;

  // Measured, not static, ratios (core/calibration.h): with a calibrator
  // attached, the device-side estimate uses the believed model × learned
  // corrections instead of the true device's analytic model — so placement
  // reflects what the device has actually been doing. The host side stays
  // analytic (the host is directly measurable and never miscalibrated here).
  void set_calibration(const CostModelCalibrator* calibration) {
    calibration_ = calibration;
  }

 private:
  const sim::DeviceSimulator& device_;
  OperatorCostModel cost_model_;
  HostCostConfig host_;
  const CostModelCalibrator* calibration_ = nullptr;
};

}  // namespace kf::core

#endif  // KF_CORE_HETERO_H_
