#include "core/hetero.h"

#include "common/error.h"
#include "core/calibration.h"

namespace kf::core {

const char* ToString(Placement placement) {
  return placement == Placement::kDevice ? "device" : "host";
}

PlacementDecision HeterogeneousScheduler::Decide(
    const OpGraph& graph, const FusionCluster& cluster,
    const std::vector<RealizedSizes>& member_sizes, bool input_on_host,
    bool output_to_host) const {
  KF_REQUIRE_AS(::kf::InvalidArgument, member_sizes.size() == cluster.nodes.size())
      << "sizes for " << member_sizes.size() << " members, cluster has "
      << cluster.nodes.size();
  PlacementDecision decision;

  // --- Device: fused kernel cost + the PCIe crossings placement implies.
  // With a calibrator attached the device side is estimated from the
  // believed model × measured corrections; otherwise from the true device's
  // analytic model (the static behavior every existing caller keeps). -------
  const auto profiles = cost_model_.FusedProfiles(graph, cluster, member_sizes);
  const KernelClass kernel_class =
      cluster.fused() ? KernelClass::kFused
      : Classify(graph.node(cluster.nodes.front()).desc.kind) ==
              FusionClass::kBarrier
          ? KernelClass::kBarrier
          : KernelClass::kStaged;
  auto device_kernel_time = [&](const sim::KernelProfile& profile) {
    return calibration_ != nullptr
               ? calibration_->EstimateKernelTime(kernel_class, profile)
               : device_.cost_model().Cost(profile).solo_duration;
  };
  auto device_transfer_time = [&](std::uint64_t bytes,
                                  sim::CopyDirection direction) {
    return calibration_ != nullptr
               ? calibration_->EstimateTransferTime(
                     bytes, sim::HostMemoryKind::kPinned, direction)
               : device_.pcie().TransferTime(bytes, sim::HostMemoryKind::kPinned,
                                             direction);
  };
  for (const auto& profile : profiles) {
    decision.device_time += device_kernel_time(profile);
  }
  const RealizedSizes& head = member_sizes.front();
  const std::uint64_t input_bytes = head.input_rows * head.input_row_bytes;
  std::uint64_t build_bytes = 0;
  for (const RealizedSizes& sizes : member_sizes) build_bytes += sizes.build_bytes;
  std::uint64_t output_bytes = 0;
  for (std::size_t m = 0; m < cluster.nodes.size(); ++m) {
    if (std::find(cluster.outputs.begin(), cluster.outputs.end(), cluster.nodes[m]) !=
        cluster.outputs.end()) {
      output_bytes += member_sizes[m].output_rows * member_sizes[m].output_row_bytes;
    }
  }
  if (input_on_host) {
    decision.device_time += device_transfer_time(
        input_bytes + build_bytes, sim::CopyDirection::kHostToDevice);
  }
  if (output_to_host) {
    decision.device_time +=
        device_transfer_time(output_bytes, sim::CopyDirection::kDeviceToHost);
  }

  // --- Host: the translated fused kernel streams the same bytes at host
  // rates; no PCIe either way (and a D2H first if the input is stranded on
  // the device). ---------------------------------------------------------------
  double host_bytes = static_cast<double>(input_bytes + build_bytes + output_bytes);
  double host_ops = 0.0;
  for (const auto& profile : profiles) {
    host_ops += profile.ops_per_element * static_cast<double>(profile.elements);
  }
  decision.host_time = host_.dispatch_overhead +
                       std::max(host_bytes / (host_.host_mem_bandwidth_gbs * kGB),
                                host_ops / host_.host_ops_per_second);
  if (!input_on_host) {
    decision.host_time +=
        device_transfer_time(input_bytes, sim::CopyDirection::kDeviceToHost);
  }

  decision.placement = decision.device_time <= decision.host_time
                           ? Placement::kDevice
                           : Placement::kHost;
  return decision;
}

}  // namespace kf::core
