#include "core/fused_pipeline.h"

#include <algorithm>
#include <unordered_map>

#include "common/error.h"
#include "core/integrity.h"
#include "relational/operators.h"
#include "relational/staged_kernel.h"

namespace kf::core {

using relational::AggregateSpec;
using relational::ChunkRange;
using relational::OperatorDesc;
using relational::OpKind;
using relational::Row;
using relational::Schema;
using relational::Table;
using relational::Value;

namespace {

// Mergeable grouped aggregation state — the per-chunk partial results the
// fused kernel keeps in shared memory, combined at the gather stage.
class GroupedAggregator {
 public:
  explicit GroupedAggregator(const OperatorDesc* desc) : desc_(desc) {}

  void Accumulate(const Row& row) {
    Row key;
    key.reserve(desc_->group_by.size());
    for (int g : desc_->group_by) key.push_back(row.at(static_cast<std::size_t>(g)));
    State& state = StateFor(key);
    for (std::size_t a = 0; a < desc_->aggregates.size(); ++a) {
      const AggregateSpec& spec = desc_->aggregates[a];
      Slot& slot = state.slots[a];
      ++slot.count;
      if (spec.func == AggregateSpec::Func::kCount) continue;
      const Value v = row.at(static_cast<std::size_t>(spec.field));
      slot.sum += v.as_double();
      if (slot.count == 1) {
        slot.min_value = v;
        slot.max_value = v;
      } else {
        if (v < slot.min_value) slot.min_value = v;
        if (slot.max_value < v) slot.max_value = v;
      }
    }
  }

  void MergeFrom(const GroupedAggregator& other) {
    for (const State& theirs : other.states_) {
      State& ours = StateFor(theirs.key);
      for (std::size_t a = 0; a < ours.slots.size(); ++a) {
        Slot& mine = ours.slots[a];
        const Slot& extra = theirs.slots[a];
        if (extra.count == 0) continue;
        if (mine.count == 0) {
          mine = extra;
          continue;
        }
        mine.sum += extra.sum;
        mine.count += extra.count;
        if (extra.min_value < mine.min_value) mine.min_value = extra.min_value;
        if (mine.max_value < extra.max_value) mine.max_value = extra.max_value;
      }
    }
  }

  Table Finalize(const Schema& out_schema) const {
    Table out(out_schema);
    for (const State& state : states_) {
      Row row = state.key;
      for (std::size_t a = 0; a < desc_->aggregates.size(); ++a) {
        const Slot& slot = state.slots[a];
        switch (desc_->aggregates[a].func) {
          case AggregateSpec::Func::kSum:
            row.push_back(Value::Float64(slot.sum));
            break;
          case AggregateSpec::Func::kAvg:
            row.push_back(Value::Float64(
                slot.count == 0 ? 0.0 : slot.sum / static_cast<double>(slot.count)));
            break;
          case AggregateSpec::Func::kMin:
            row.push_back(slot.min_value);
            break;
          case AggregateSpec::Func::kMax:
            row.push_back(slot.max_value);
            break;
          case AggregateSpec::Func::kCount:
            row.push_back(Value::Int64(slot.count));
            break;
        }
      }
      out.AppendRow(row);
    }
    return out;
  }

 private:
  struct Slot {
    double sum = 0.0;
    std::int64_t count = 0;
    Value min_value;
    Value max_value;
  };
  struct State {
    Row key;
    std::vector<Slot> slots;
  };

  static std::string KeyString(const Row& key) {
    std::string s;
    char buffer[40];
    for (const Value& v : key) {
      if (v.is_float()) {
        std::snprintf(buffer, sizeof(buffer), "f%.17g|", v.as_double());
      } else {
        std::snprintf(buffer, sizeof(buffer), "i%lld|",
                      static_cast<long long>(v.as_int()));
      }
      s += buffer;
    }
    return s;
  }

  State& StateFor(const Row& key) {
    const std::string key_str = KeyString(key);
    auto [it, inserted] = index_.emplace(key_str, states_.size());
    if (inserted) {
      State state;
      state.key = key;
      state.slots.resize(desc_->aggregates.size());
      states_.push_back(std::move(state));
    }
    return states_[it->second];
  }

  const OperatorDesc* desc_;
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<State> states_;
};

using BuildIndex =
    std::unordered_map<Value, std::vector<Row>, relational::ValueHash, relational::ValueEq>;

// Per-chunk working state: the fused compute stage.
struct ChunkState {
  // Output row buffers for non-aggregate cluster outputs, by node id.
  std::map<NodeId, std::vector<Row>> buffers;
  // Per-chunk aggregation partials, by node id.
  std::map<NodeId, GroupedAggregator> aggregators;
  // Rows produced per member in this chunk (for cost attribution).
  std::map<NodeId, std::size_t> member_rows;
};

// Typed-kernel fast path: a cluster that is a linear SELECT chain over a
// single int32 column, with every predicate compilable to a TypedPredicate,
// runs through the staged substrate over a pooled workspace — vectorized
// filter stages, zero Row objects, zero steady-state allocations beyond the
// output table itself. Returns false (leaving `result` untouched) when the
// cluster doesn't match, which keeps the generic path the semantic reference.
bool TryTypedSelectChain(const OpGraph& graph, const FusionCluster& cluster,
                         const Table& primary, int chunk_count, ThreadPool* pool,
                         kf::BufferArena* arena, ClusterExecution& result) {
  if (primary.column_count() != 1 ||
      primary.column(0).type() != relational::DataType::kInt32) {
    return false;
  }
  NodeId expected_input = cluster.primary_input;
  std::vector<relational::TypedPredicate> preds;
  preds.reserve(cluster.nodes.size());
  for (NodeId id : cluster.nodes) {
    const OpNode& node = graph.node(id);
    if (node.desc.kind != OpKind::kSelect || node.inputs.size() != 1 ||
        node.inputs[0] != expected_input) {
      return false;
    }
    const std::optional<relational::TypedPredicate> pred =
        relational::CompilePredicate(node.desc.predicate, 0);
    if (!pred.has_value()) return false;
    preds.push_back(*pred);
    expected_input = id;
  }
  if (cluster.outputs.size() != 1 || cluster.outputs[0] != cluster.nodes.back()) {
    return false;
  }

  kf::BufferArena& pool_arena =
      arena != nullptr ? *arena : kf::BufferArena::ThreadLocal();
  auto ws = pool_arena.Acquire<relational::StagedBuffers>();
  // Per-stage execution (not one folded pass) so each member's row count is
  // attributed exactly as the generic path does for the cost model.
  std::vector<relational::StagedSelectStats> per_step;
  const std::span<const std::int32_t> selected =
      relational::StagedSelectChainUnfusedInto(primary.column(0).AsInt32(),
                                               preds, chunk_count, *ws, pool,
                                               &per_step);

  result.primary_rows = primary.row_count();
  result.chunk_count = chunk_count;
  for (std::size_t s = 0; s < cluster.nodes.size(); ++s) {
    result.member_rows[cluster.nodes[s]] = per_step[s].output_count;
  }
  const OpNode& out_node = graph.node(cluster.outputs[0]);
  Table table(out_node.schema);
  table.column(0).AsInt32().assign(selected.begin(), selected.end());
  table.SyncRowCountFromColumns();
  result.output_rows[cluster.outputs[0]] = table.row_count();
  result.outputs.emplace(cluster.outputs[0], std::move(table));
  return true;
}

}  // namespace

ClusterExecution ExecuteCluster(const OpGraph& graph, const FusionCluster& cluster,
                                const TableLookup& table_of, int chunk_count,
                                ThreadPool* pool, kf::BufferArena* arena,
                                bool compute_checksums) {
  KF_REQUIRE(!cluster.nodes.empty()) << "empty fusion cluster";
  KF_REQUIRE_AS(::kf::InvalidArgument, chunk_count > 0) << "chunk count must be positive";

  // Digest every output on the way out when the audit layer asked for it.
  auto finish = [compute_checksums](ClusterExecution exec) {
    if (compute_checksums) {
      for (const auto& [id, table] : exec.outputs) {
        exec.output_checksums[id] = ChecksumTable(table);
      }
    }
    return exec;
  };

  // --- Validate that the planner gave us a streamable cluster. -------------
  for (NodeId id : cluster.nodes) {
    const FusionClass c = Classify(graph.node(id).desc.kind);
    KF_REQUIRE(c != FusionClass::kBarrier)
        << "barrier operator '" << graph.node(id).name << "' inside a fused kernel";
    if (c == FusionClass::kReduction) {
      for (NodeId member : cluster.nodes) {
        for (NodeId input : graph.node(member).inputs) {
          KF_REQUIRE(input != id)
              << "reduction '" << graph.node(id).name << "' has in-cluster consumers";
        }
      }
    }
  }

  const Table& primary = table_of(cluster.primary_input);

  {
    ClusterExecution fast;
    if (TryTypedSelectChain(graph, cluster, primary, chunk_count, pool, arena,
                            fast)) {
      return finish(std::move(fast));
    }
  }

  // --- Pre-build JOIN/PRODUCT side inputs (they are materialized). ---------
  std::map<NodeId, BuildIndex> join_builds;
  std::map<NodeId, std::vector<Row>> product_builds;
  for (NodeId id : cluster.nodes) {
    const OpNode& node = graph.node(id);
    if (node.desc.kind == OpKind::kJoin) {
      const Table& build = table_of(node.inputs[1]);
      BuildIndex index;
      const auto key_col = static_cast<std::size_t>(node.desc.right_key);
      for (std::size_t r = 0; r < build.row_count(); ++r) {
        Row right_row;
        right_row.reserve(build.column_count() - 1);
        for (std::size_t c = 0; c < build.column_count(); ++c) {
          if (c != key_col) right_row.push_back(build.column(c).Get(r));
        }
        index[build.column(key_col).Get(r)].push_back(std::move(right_row));
      }
      join_builds.emplace(id, std::move(index));
    } else if (node.desc.kind == OpKind::kProduct) {
      product_builds.emplace(id, table_of(node.inputs[1]).Rows());
    }
  }

  // --- Compute stage over one chunk. ----------------------------------------
  const std::vector<ChunkRange> chunks =
      relational::PartitionInput(primary.row_count(), chunk_count);
  std::vector<ChunkState> chunk_states(chunks.size());

  auto process_chunk = [&](std::size_t c) {
    ChunkState& state = chunk_states[c];
    for (NodeId out : cluster.outputs) {
      if (Classify(graph.node(out).desc.kind) == FusionClass::kReduction) {
        state.aggregators.emplace(out, GroupedAggregator(&graph.node(out).desc));
      } else {
        state.buffers.emplace(out, std::vector<Row>{});
      }
    }
    // Rows each member produced for the CURRENT element (registers).
    std::map<NodeId, std::vector<Row>> live;
    for (std::size_t i = chunks[c].begin; i < chunks[c].end; ++i) {
      const Row base = primary.GetRow(i);
      live.clear();
      for (NodeId id : cluster.nodes) {
        const OpNode& node = graph.node(id);
        // Input rows: the streamed element, or the in-cluster producer's rows.
        const std::vector<Row>* inputs = nullptr;
        std::vector<Row> base_holder;
        if (node.inputs[0] == cluster.primary_input) {
          base_holder.push_back(base);
          inputs = &base_holder;
        } else {
          auto it = live.find(node.inputs[0]);
          KF_REQUIRE(it != live.end())
              << "fused member '" << node.name << "' input not produced in cluster";
          inputs = &it->second;
        }
        std::vector<Row> produced;
        for (const Row& row : *inputs) {
          switch (node.desc.kind) {
            case OpKind::kSelect:
              if (relational::EvalExpr(node.desc.predicate, row).as_bool()) {
                produced.push_back(row);
              }
              break;
            case OpKind::kProject: {
              Row projected;
              projected.reserve(node.desc.fields.size());
              for (int f : node.desc.fields) {
                projected.push_back(row.at(static_cast<std::size_t>(f)));
              }
              produced.push_back(std::move(projected));
              break;
            }
            case OpKind::kArith: {
              Row extended = row;
              Value v = relational::EvalExpr(node.desc.arith, row);
              switch (node.desc.arith_type) {
                case relational::DataType::kInt32:
                  v = Value::Int32(static_cast<std::int32_t>(v.as_int()));
                  break;
                case relational::DataType::kInt64:
                  v = Value::Int64(v.as_int());
                  break;
                case relational::DataType::kFloat64:
                  v = Value::Float64(v.as_double());
                  break;
              }
              extended.push_back(v);
              produced.push_back(std::move(extended));
              break;
            }
            case OpKind::kJoin: {
              const BuildIndex& index = join_builds.at(id);
              auto it = index.find(row.at(static_cast<std::size_t>(node.desc.left_key)));
              if (it == index.end()) break;
              for (const Row& right_row : it->second) {
                Row combined = row;
                combined.insert(combined.end(), right_row.begin(), right_row.end());
                produced.push_back(std::move(combined));
              }
              break;
            }
            case OpKind::kProduct:
              for (const Row& right_row : product_builds.at(id)) {
                Row combined = row;
                combined.insert(combined.end(), right_row.begin(), right_row.end());
                produced.push_back(std::move(combined));
              }
              break;
            case OpKind::kAggregate:
              state.aggregators.at(id).Accumulate(row);
              break;
            default:
              KF_REQUIRE(false) << "operator " << relational::ToString(node.desc.kind)
                                << " cannot stream in a fused kernel";
          }
        }
        state.member_rows[id] += produced.size();
        // Buffer rows leaving the cluster from this member.
        auto buffer = state.buffers.find(id);
        if (buffer != state.buffers.end()) {
          for (const Row& row : produced) buffer->second.push_back(row);
        }
        live.emplace(id, std::move(produced));
      }
    }
  };

  if (pool != nullptr && chunks.size() > 1) {
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      pool->Submit([&process_chunk, c] { process_chunk(c); });
    }
    pool->Wait();
  } else {
    for (std::size_t c = 0; c < chunks.size(); ++c) process_chunk(c);
  }

  // --- Gather stage: one pass concatenating per-chunk buffers / merging
  // per-chunk aggregation partials. -----------------------------------------
  ClusterExecution result;
  result.primary_rows = primary.row_count();
  result.chunk_count = chunk_count;
  // Every member gets an entry even when the primary input is empty (no
  // chunks ever stream): downstream cost accounting looks up every member's
  // realized row count unconditionally.
  for (NodeId id : cluster.nodes) result.member_rows[id] = 0;
  for (const ChunkState& state : chunk_states) {
    for (const auto& [member, rows] : state.member_rows) result.member_rows[member] += rows;
  }
  for (NodeId out : cluster.outputs) {
    const OpNode& node = graph.node(out);
    if (Classify(node.desc.kind) == FusionClass::kReduction) {
      GroupedAggregator merged(&node.desc);
      for (const ChunkState& state : chunk_states) {
        merged.MergeFrom(state.aggregators.at(out));
      }
      result.outputs.emplace(out, merged.Finalize(node.schema));
    } else {
      Table table(node.schema);
      std::size_t total = 0;
      for (const ChunkState& state : chunk_states) total += state.buffers.at(out).size();
      table.Reserve(total);
      for (const ChunkState& state : chunk_states) {
        for (const Row& row : state.buffers.at(out)) table.AppendRow(row);
      }
      result.outputs.emplace(out, std::move(table));
    }
    result.output_rows[out] = result.outputs.at(out).row_count();
  }
  return finish(std::move(result));
}

}  // namespace kf::core
