#include "core/operator_cost.h"

#include <algorithm>

#include "common/error.h"
#include "relational/expr.h"

namespace kf::core {

using relational::ExprOps;
using relational::OpKind;
using sim::KernelProfile;

sim::KernelProfile OperatorCostModel::BaseProfile(std::string label,
                                                  std::uint64_t elements) const {
  KernelProfile profile;
  profile.label = std::move(label);
  profile.elements = elements;
  profile.cta_count = config_.cta_count;
  profile.threads_per_cta = config_.threads_per_cta;
  profile.registers_per_thread = 16;
  profile.launches = 1;
  return profile;
}

namespace {

double OperatorOps(const OpNode& node) {
  switch (node.desc.kind) {
    case OpKind::kSelect:
      return ExprOps(node.desc.predicate) + 2;
    case OpKind::kArith:
      return ExprOps(node.desc.arith) + 2;
    case OpKind::kProject:
      return static_cast<double>(node.desc.fields.size()) + 1;
    case OpKind::kJoin:
      return 14.0;  // hash, probe chain walk, emit
    case OpKind::kProduct:
      return 6.0;
    case OpKind::kAggregate:
      return 4.0 + 3.0 * static_cast<double>(node.desc.aggregates.size());
    case OpKind::kSort:
      return 12.0;  // per element per pass, applied below
    case OpKind::kUnique:
      return 8.0;
    case OpKind::kUnion:
    case OpKind::kIntersect:
    case OpKind::kDifference:
      return 10.0;
    default:
      return 8.0;
  }
}

}  // namespace

std::vector<KernelProfile> OperatorCostModel::UnfusedProfiles(
    const OpNode& node, const RealizedSizes& sizes) const {
  KF_REQUIRE(!node.is_source) << "sources have no kernels";
  const std::uint64_t in_bytes = sizes.input_rows * sizes.input_row_bytes;
  const std::uint64_t out_bytes = sizes.output_rows * sizes.output_row_bytes;
  std::vector<KernelProfile> profiles;

  switch (node.desc.kind) {
    case OpKind::kSort: {
      // LSD radix sort: each pass streams key+payload in and out.
      KernelProfile pass = BaseProfile(node.name + "/radix", sizes.input_rows);
      pass.ops_per_element = config_.base_ops_per_element + OperatorOps(node);
      pass.global_bytes_read = in_bytes;
      pass.global_bytes_written = in_bytes;
      pass.memory_access_efficiency = config_.sort_access_efficiency;
      pass.launches = 2;  // histogram + scatter per pass
      for (int p = 0; p < config_.sort_passes; ++p) {
        KernelProfile copy = pass;
        copy.label += "[" + std::to_string(p) + "]";
        profiles.push_back(std::move(copy));
      }
      return profiles;
    }
    case OpKind::kAggregate: {
      KernelProfile compute = BaseProfile(node.name + "/reduce", sizes.input_rows);
      compute.ops_per_element = config_.base_ops_per_element + OperatorOps(node);
      compute.global_bytes_read = in_bytes;
      // Per-chunk partials only.
      compute.global_bytes_written =
          static_cast<std::uint64_t>(config_.cta_count) * sizes.output_row_bytes;
      compute.memory_access_efficiency = config_.compute_access_efficiency;
      profiles.push_back(std::move(compute));

      KernelProfile combine = BaseProfile(node.name + "/combine",
                                          std::max<std::uint64_t>(sizes.output_rows, 1));
      combine.ops_per_element = 8.0;
      combine.global_bytes_read =
          static_cast<std::uint64_t>(config_.cta_count) * sizes.output_row_bytes;
      combine.global_bytes_written = out_bytes;
      combine.memory_access_efficiency = config_.gather_access_efficiency;
      profiles.push_back(std::move(combine));
      return profiles;
    }
    default:
      break;
  }

  // Generic staged operator: compute kernel (partition + op + buffer) then
  // gather kernel.
  KernelProfile compute = BaseProfile(node.name + "/compute", sizes.input_rows);
  compute.ops_per_element = config_.base_ops_per_element + OperatorOps(node);
  compute.global_bytes_read = in_bytes + sizes.build_bytes;
  compute.global_bytes_written = out_bytes;  // per-chunk buffers
  compute.memory_access_efficiency =
      node.desc.kind == OpKind::kJoin || node.desc.kind == OpKind::kProduct ||
              node.desc.kind == OpKind::kUnion || node.desc.kind == OpKind::kIntersect ||
              node.desc.kind == OpKind::kDifference
          ? config_.probe_access_efficiency
          : config_.compute_access_efficiency;
  profiles.push_back(std::move(compute));

  KernelProfile gather = BaseProfile(node.name + "/gather",
                                     std::max<std::uint64_t>(sizes.output_rows, 1));
  gather.ops_per_element = 2.0;
  gather.global_bytes_read = out_bytes;
  gather.global_bytes_written = out_bytes;
  gather.memory_access_efficiency = config_.gather_access_efficiency;
  profiles.push_back(std::move(gather));
  return profiles;
}

std::vector<KernelProfile> OperatorCostModel::FusedProfiles(
    const OpGraph& graph, const FusionCluster& cluster,
    const std::vector<RealizedSizes>& per_member) const {
  KF_REQUIRE_AS(::kf::InvalidArgument, per_member.size() == cluster.nodes.size())
      << "realized sizes for " << per_member.size() << " members, cluster has "
      << cluster.nodes.size();
  KF_REQUIRE(!per_member.empty()) << "empty cluster";

  // The fused compute kernel reads the streamed input once plus every build
  // side once; intermediates stay in registers. It writes only the rows that
  // leave the cluster, into per-chunk buffers.
  const RealizedSizes& head = per_member.front();
  std::uint64_t read_bytes = head.input_rows * head.input_row_bytes;
  std::uint64_t elements = head.input_rows;
  double ops = config_.base_ops_per_element;
  int registers = cluster.register_estimate;
  double min_access_efficiency = config_.compute_access_efficiency;

  std::uint64_t output_bytes = 0;
  std::uint64_t output_rows = 0;
  for (std::size_t m = 0; m < cluster.nodes.size(); ++m) {
    const OpNode& node = graph.node(cluster.nodes[m]);
    const RealizedSizes& sizes = per_member[m];
    // Ops are paid per element the member actually processes; normalize to
    // the streamed element count.
    const double share =
        elements == 0 ? 0.0
                      : static_cast<double>(sizes.input_rows) / static_cast<double>(elements);
    ops += OperatorOps(node) * share;
    read_bytes += sizes.build_bytes;
    if (node.desc.kind == OpKind::kJoin || node.desc.kind == OpKind::kProduct) {
      min_access_efficiency =
          std::min(min_access_efficiency, config_.probe_access_efficiency);
    }
    const bool is_output = std::find(cluster.outputs.begin(), cluster.outputs.end(),
                                     cluster.nodes[m]) != cluster.outputs.end();
    if (is_output) {
      output_bytes += sizes.output_rows * sizes.output_row_bytes;
      output_rows += sizes.output_rows;
    }
  }

  std::vector<KernelProfile> profiles;
  KernelProfile compute = BaseProfile("fused/compute", elements);
  compute.ops_per_element = ops;
  compute.global_bytes_read = read_bytes;
  compute.global_bytes_written = output_bytes;
  compute.memory_access_efficiency = min_access_efficiency;
  compute.registers_per_thread = std::max(16, registers);
  profiles.push_back(std::move(compute));

  KernelProfile gather =
      BaseProfile("fused/gather", std::max<std::uint64_t>(output_rows, 1));
  gather.ops_per_element = 2.0;
  gather.global_bytes_read = output_bytes;
  gather.global_bytes_written = output_bytes;
  gather.memory_access_efficiency = config_.gather_access_efficiency;
  gather.registers_per_thread = 16;
  profiles.push_back(std::move(gather));
  return profiles;
}

}  // namespace kf::core
