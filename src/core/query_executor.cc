#include "core/query_executor.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>
#include <unordered_map>

#include "common/error.h"
#include "common/random.h"
#include "core/hetero.h"
#include "obs/hostperf_export.h"
#include "relational/operators.h"
#include "stream/stream_pool.h"

namespace kf::core {

using relational::OpKind;
using relational::Table;
using sim::CommandId;
using sim::CommandSpec;

const char* ToString(Strategy strategy) {
  switch (strategy) {
    case Strategy::kSerial: return "serial";
    case Strategy::kFused: return "fusion";
    case Strategy::kFission: return "fission";
    case Strategy::kFusedFission: return "fusion+fission";
  }
  return "?";
}

namespace {

enum class Category : std::uint8_t {
  kInputOutput,
  kRoundTrip,
  kCompute,
  kHostGather,
  kIntegrity,  // checksum passes + host audits on the host engine
};

const char* CategoryName(Category category) {
  switch (category) {
    case Category::kInputOutput: return "input_output";
    case Category::kRoundTrip: return "round_trip";
    case Category::kCompute: return "compute";
    case Category::kHostGather: return "host_gather";
    case Category::kIntegrity: return "integrity";
  }
  return "?";
}

// Where a node's data currently lives during timeline construction.
struct Residency {
  bool on_device = false;
  bool on_host = true;
  std::uint64_t bytes = 0;
  std::optional<sim::AllocationId> alloc;
  std::optional<CommandId> ready;  // command that made the data available
  int pending_uses = 0;            // cluster reads + final sink download
};

std::uint64_t DivCeil(std::uint64_t a, std::uint64_t b) { return (a + b - 1) / b; }

// Default row-count propagation for timing-only mode (overrides win).
std::uint64_t EstimateRows(const OpGraph& graph, NodeId id,
                           const std::map<NodeId, std::uint64_t>& rows) {
  const OpNode& node = graph.node(id);
  auto input_rows = [&](std::size_t i) { return rows.at(node.inputs[i]); };
  switch (node.desc.kind) {
    case OpKind::kProduct:
      return input_rows(0) * input_rows(1);
    case OpKind::kAggregate:
      return std::min<std::uint64_t>(input_rows(0), 64);
    case OpKind::kJoin:
    case OpKind::kSelect:
    case OpKind::kIntersect:
    case OpKind::kDifference:
      return input_rows(0);  // upper bound; callers should override
    case OpKind::kUnion:
      return input_rows(0) + input_rows(1);
    default:
      return input_rows(0);
  }
}

}  // namespace

FusionOptions EffectiveFusionOptions(const ExecutorOptions& options) {
  const bool fuse = options.strategy == Strategy::kFused ||
                    options.strategy == Strategy::kFusedFission;
  const bool fission = options.strategy == Strategy::kFission ||
                       options.strategy == Strategy::kFusedFission;
  FusionOptions fusion_options = options.fusion;
  fusion_options.enabled =
      fuse || fission || options.intermediates == IntermediatePolicy::kKeepOnDevice;
  if (fusion_options.calibration == nullptr) {
    fusion_options.calibration = options.calibration;
  }
  return fusion_options;
}

ExecutionReport QueryExecutor::Execute(const OpGraph& graph,
                                       const std::map<NodeId, Table>& sources,
                                       const ExecutorOptions& options) const {
  return Run(graph, &sources, {}, options);
}

ExecutionReport QueryExecutor::EstimateOnly(
    const OpGraph& graph, const std::map<NodeId, std::uint64_t>& row_counts,
    const ExecutorOptions& options) const {
  return Run(graph, nullptr, row_counts, options);
}

ExecutionReport QueryExecutor::Run(const OpGraph& graph,
                                   const std::map<NodeId, Table>* sources,
                                   std::map<NodeId, std::uint64_t> rows,
                                   const ExecutorOptions& options) const {
  const bool fuse = options.strategy == Strategy::kFused ||
                    options.strategy == Strategy::kFusedFission;
  const bool fission = options.strategy == Strategy::kFission ||
                       options.strategy == Strategy::kFusedFission;

  // --- Plan clusters. Grouping decides *scheduling* granularity: members of
  // one cluster execute back-to-back with intermediates in device memory
  // (kernels still separate unless the strategy fuses them), and data larger
  // than the device streams through the whole chain segment-wise. Only the
  // round-trip regime — intermediates evicted to host after every operator —
  // needs ungrouped clusters. ---------------------------------------------------
  obs::MetricsRegistry& metrics =
      options.metrics != nullptr ? *options.metrics : obs::MetricsRegistry::Default();

  // --- Tracing. The root "execute" span covers the whole simulated run;
  // every structural span below (plan, functional, clusters, segments,
  // retries) and every stream-command leaf nests under it. All sim times in
  // this function are run-local; trace.sim_offset re-bases them onto the
  // session clock inside the tracer.
  obs::Tracer* const tracer = options.tracer;
  obs::TraceContext trace_ctx = options.trace;
  obs::SpanId root_span = 0;
  obs::SpanId plan_span = 0;
  if (tracer != nullptr) {
    if (trace_ctx.query_id == 0) trace_ctx.query_id = tracer->NextQueryId();
    root_span = tracer->BeginSpan(
        trace_ctx, options.trace_parent,
        std::string("execute/") + ToString(options.strategy), "executor", 0.0);
    plan_span = tracer->BeginSpan(trace_ctx, root_span, "plan", "executor", 0.0);
  }

  FusionOptions fusion_options = EffectiveFusionOptions(options);
  if (fusion_options.metrics == nullptr) fusion_options.metrics = &metrics;
  if (options.plan != nullptr) {
    KF_REQUIRE_AS(::kf::InvalidArgument,
                  options.plan->cluster_of.size() == graph.node_count())
        << "precomputed fusion plan covers " << options.plan->cluster_of.size()
        << " nodes but the graph has " << graph.node_count();
  }
  const FusionPlan plan =
      options.plan != nullptr ? *options.plan : PlanFusion(graph, fusion_options);
  if (tracer != nullptr) {
    tracer->EndSpan(trace_ctx, plan_span, 0.0);
    tracer->Annotate(trace_ctx, plan_span,
                     options.plan != nullptr
                         ? obs::SpanAnnotationKind::kCacheHit
                         : obs::SpanAnnotationKind::kCacheMiss,
                     options.plan != nullptr ? "precomputed fusion plan"
                                             : "planned fresh",
                     0.0);
  }

  ExecutionReport report;
  report.cluster_count = plan.clusters.size();
  report.fused_cluster_count = plan.fused_cluster_count();

  // --- Integrity configuration. Which clusters are audited is decided up
  // front (fixed for this run, retries included): a pure draw from the audit
  // seed, the injector's current epoch, and the cluster index. ----------------
  const IntegrityOptions& integ = options.integrity;
  const bool verify_transfers = integ.verify_transfers;
  const double audit_fraction = std::clamp(integ.audit_fraction, 0.0, 1.0);
  const bool audit_on = audit_fraction > 0.0;
  std::vector<char> audited(plan.clusters.size(), 0);
  if (audit_on) {
    const std::uint64_t run_salt =
        options.fault_injector != nullptr ? options.fault_injector->epoch() : 0;
    for (std::size_t c = 0; c < plan.clusters.size(); ++c) {
      audited[c] =
          AuditSampled(integ.audit_seed, run_salt, c, audit_fraction) ? 1 : 0;
    }
  }

  // --- Functional pass: materialize source/cluster-output tables and record
  // realized row counts. -------------------------------------------------------
  std::map<NodeId, Table> computed;  // cluster outputs / per-node outputs
  auto lookup = [&](NodeId id) -> const Table& {
    if (sources != nullptr) {
      auto it = sources->find(id);
      if (it != sources->end()) return it->second;
    }
    auto it = computed.find(id);
    KF_REQUIRE(it != computed.end()) << "node #" << id << " not materialized";
    return it->second;
  };

  // Wall-time-only span: the functional pass happens before the simulated
  // clock starts, so its sim interval is a zero-width marker at t=0.
  const obs::SpanId functional_span =
      tracer != nullptr && sources != nullptr
          ? tracer->BeginSpan(trace_ctx, root_span, "functional", "executor", 0.0)
          : 0;

  if (sources != nullptr) {
    for (NodeId src : graph.Sources()) {
      KF_REQUIRE_AS(::kf::InvalidArgument, sources->count(src) != 0)
          << "source '" << graph.node(src).name << "' not bound";
      rows[src] = sources->at(src).row_count();
    }
    for (std::size_t ci = 0; ci < plan.clusters.size(); ++ci) {
      const FusionCluster& cluster = plan.clusters[ci];
      const bool cluster_audited = audited[ci] != 0;
      const bool barrier_cluster =
          cluster.nodes.size() == 1 &&
          Classify(graph.node(cluster.nodes[0]).desc.kind) == FusionClass::kBarrier;
      if (fuse && !barrier_cluster) {
        ClusterExecution exec =
            ExecuteCluster(graph, cluster, lookup, options.chunk_count, pool_,
                           options.arena, cluster_audited);
        for (const auto& [id, digest] : exec.output_checksums) {
          report.audit_checksums[id] = digest;
        }
        for (auto& [id, table] : exec.outputs) {
          rows[id] = table.row_count();
          computed.emplace(id, std::move(table));
        }
        for (const auto& [id, count] : exec.member_rows) {
          if (rows.count(id) == 0) rows[id] = count;
        }
      } else {
        for (NodeId id : cluster.nodes) {
          const OpNode& node = graph.node(id);
          const Table& left = lookup(node.inputs[0]);
          const Table* right =
              node.inputs.size() > 1 ? &lookup(node.inputs[1]) : nullptr;
          Table out = relational::ApplyOperator(node.desc, left, right);
          rows[id] = out.row_count();
          computed.emplace(id, std::move(out));
        }
        if (cluster_audited) {
          for (NodeId out : cluster.outputs) {
            report.audit_checksums[out] = ChecksumTable(lookup(out));
          }
        }
      }
    }
  } else {
    // Timing-only: source rows from hints; operators from overrides, with
    // structural estimates as fallback.
    std::map<NodeId, std::uint64_t> overrides = rows;
    for (NodeId id : graph.TopologicalOrder()) {
      const OpNode& node = graph.node(id);
      if (node.is_source) {
        rows[id] = overrides.count(id) != 0 ? overrides[id] : node.row_hint;
      } else if (overrides.count(id) != 0) {
        rows[id] = overrides[id];
      } else {
        rows[id] = EstimateRows(graph, id, rows);
      }
    }
  }
  if (functional_span != 0) tracer->EndSpan(trace_ctx, functional_span, 0.0);

  auto row_bytes = [&](NodeId id) -> std::uint64_t {
    return graph.node(id).schema.row_width_bytes();
  };
  auto node_bytes = [&](NodeId id) -> std::uint64_t { return rows.at(id) * row_bytes(id); };

  // --- Timeline construction over the Stream Pool. ---------------------------
  // Adaptive stream-count selection: fission pipelines get one stream per
  // overlappable engine leg (H2D/compute/D2H) from the calibrator, plus a
  // spare under measured stall pressure, instead of the fixed constant.
  CostModelCalibrator* const calib = options.calibration;
  int stream_count = std::max(1, options.stream_count);
  if (calib != nullptr && fission) {
    stream_count = calib->ChooseStreamCount(/*d2h_present=*/!graph.Sinks().empty());
    metrics
        .GetGauge("calib.stream_count",
                  obs::Labels{{"strategy", ToString(options.strategy)}})
        .Set(static_cast<double>(stream_count));
  }
  // Verification work (checksum passes, host audits) gets a dedicated extra
  // stream so it never serializes behind compute-stream commands and the
  // compute schedule is unchanged whether verification is on or off.
  const bool integrity_stream = verify_transfers || audit_on;
  stream::StreamPool streams(device_, stream_count + (integrity_stream ? 1 : 0),
                             &metrics, options.fault_injector);
  std::vector<stream::StreamHandle> handles;
  for (int s = 0; s < stream_count; ++s) {
    handles.push_back(streams.GetAvailableStream());
  }
  const stream::StreamHandle main_stream = handles[0];
  const stream::StreamHandle crc_stream =
      integrity_stream ? streams.GetAvailableStream() : main_stream;

  struct TaggedCommand {
    CommandId id;
    Category category;
    sim::CommandKind kind;
    SimTime duration;
    std::uint64_t bytes;
    int launches;
    int unit;  // retry unit, -1 when fault recovery is off
  };
  std::vector<TaggedCommand> tagged;
  // Specs kept for fault recovery: a failed unit is rebuilt command-by-command
  // on a fresh stream. Parallel to `tagged`.
  std::vector<CommandSpec> specs;

  // Tracing state, parallel to `tagged`: the enclosing structural span and
  // stage category of every issued command (leaf spans attach through the
  // pool's trace sink after the timeline runs).
  std::vector<obs::SpanId> cmd_parents;
  std::vector<std::string> cmd_categories;
  obs::SpanId trace_cmd_parent = root_span;
  // Structural spans whose sim interval is only known once the timeline ran:
  // resolved to the min-start/max-end of their tagged command range.
  struct PendingIntervalSpan {
    obs::SpanId span;
    std::size_t begin;
    std::size_t end;
  };
  std::vector<PendingIntervalSpan> pending_interval_spans;
  std::vector<obs::SpanId> cluster_spans(plan.clusters.size(), 0);

  // Retry units (see ResilienceOptions): unit -> owning cluster index.
  std::vector<int> unit_cluster;
  int active_unit = -1;
  auto begin_unit = [&](int cluster_index) {
    unit_cluster.push_back(cluster_index);
    active_unit = static_cast<int>(unit_cluster.size()) - 1;
  };

  // Per-command observations destined for the calibrator: copies keyed by
  // direction and bytes (observed time read from the finished timeline),
  // kernels by stage category and profile (observed time is the realized solo
  // duration — wall time would confound co-residency sharing with model
  // error; stall pressure is fed separately from the timeline's counters).
  struct PendingCopyObs {
    sim::CopyDirection direction;
    std::uint64_t bytes;
    std::size_t tagged_index;
  };
  struct PendingKernelObs {
    sim::KernelProfile profile;
    KernelClass cls;
    std::size_t tagged_index;
  };
  std::vector<PendingCopyObs> pending_copy_obs;
  std::vector<PendingKernelObs> pending_kernel_obs;

  const bool track_units = options.fault_injector != nullptr;
  auto issue_cmd = [&](stream::StreamHandle stream, CommandSpec spec,
                       Category category, std::uint64_t bytes, int launches = 0) {
    const SimTime duration =
        spec.kind == sim::CommandKind::kKernel ? spec.solo_duration : spec.duration;
    const sim::CommandKind kind = spec.kind;
    const CommandId id = streams.SetStreamCommand(stream, stream::PoolCommand{spec, {}});
    tagged.push_back(TaggedCommand{id, category, kind, duration, bytes, launches,
                                   track_units ? active_unit : -1});
    if (tracer != nullptr) {
      cmd_parents.push_back(trace_cmd_parent);
      cmd_categories.push_back(CategoryName(category));
    }
    if (calib != nullptr &&
        (kind == sim::CommandKind::kCopyH2D || kind == sim::CommandKind::kCopyD2H)) {
      pending_copy_obs.push_back(
          PendingCopyObs{kind == sim::CommandKind::kCopyH2D
                             ? sim::CopyDirection::kHostToDevice
                             : sim::CopyDirection::kDeviceToHost,
                         bytes, tagged.size() - 1});
    }
    if (track_units) specs.push_back(std::move(spec));
    return id;
  };

  // issue_cmd plus the transfer-verification chaser: every copy gets a
  // host-engine checksum pass over the same bytes on the crc stream — an H2D
  // stages the host buffer's digest (no dependency: it overlaps the upload),
  // a D2H verifies the downloaded bytes (depends on the copy). The chaser
  // joins the copy's retry unit, so re-executed units re-verify too.
  std::uint64_t checksummed_bytes = 0;
  auto issue = [&](stream::StreamHandle stream, CommandSpec spec, Category category,
                   std::uint64_t bytes, int launches = 0) {
    const sim::CommandKind kind = spec.kind;
    const bool is_copy =
        kind == sim::CommandKind::kCopyH2D || kind == sim::CommandKind::kCopyD2H;
    const std::string label = is_copy && verify_transfers ? spec.label : "";
    const CommandId id = issue_cmd(stream, std::move(spec), category, bytes, launches);
    if (verify_transfers && is_copy && bytes > 0) {
      CommandSpec crc = device_.MakeHostWork(
          bytes, label + (kind == sim::CommandKind::kCopyH2D ? "/crc-stage"
                                                             : "/crc-verify"));
      if (kind == sim::CommandKind::kCopyD2H) crc.dependencies.push_back(id);
      issue_cmd(crc_stream, std::move(crc), Category::kIntegrity, bytes);
      checksummed_bytes += bytes;
    }
    return id;
  };

  sim::DeviceMemoryModel memory(device_.spec().mem_capacity_bytes);
  memory.set_fault_injector(options.fault_injector);
  std::map<NodeId, Residency> residency;

  // Pending uses: how many clusters read this node, plus one if it is a sink.
  const std::vector<NodeId> sinks = graph.Sinks();
  for (NodeId id = 0; id < graph.node_count(); ++id) {
    Residency r;
    r.bytes = node_bytes(id);
    r.on_host = graph.node(id).is_source;
    r.on_device = false;
    residency[id] = r;
  }
  for (const FusionCluster& cluster : plan.clusters) {
    ++residency[cluster.primary_input].pending_uses;
    for (NodeId build : cluster.build_inputs) ++residency[build].pending_uses;
  }
  for (NodeId sink : sinks) ++residency[sink].pending_uses;

  auto release_use = [&](NodeId id) {
    Residency& r = residency[id];
    if (--r.pending_uses <= 0 && r.alloc.has_value()) {
      memory.Free(*r.alloc);
      r.alloc.reset();
      r.on_device = false;
    }
  };

  // Sends a device-resident intermediate back to the host and frees it
  // (declared below; needed by the spilling allocator).
  std::function<void(NodeId, Category)> spill_to_host;

  // Allocates device space for `id`, spilling resident intermediates (not in
  // `pinned_nodes`) back to host memory on capacity pressure — the forced
  // round trip the paper describes when intermediates exceed GPU memory.
  auto allocate_with_spill = [&](std::uint64_t bytes, const std::string& label,
                                 const std::vector<NodeId>& pinned_nodes) {
    while (!memory.CanAllocate(bytes)) {
      NodeId victim = kNoNode;
      std::uint64_t victim_bytes = 0;
      for (auto& [id, r] : residency) {
        if (!r.on_device || !r.alloc.has_value()) continue;
        if (std::find(pinned_nodes.begin(), pinned_nodes.end(), id) !=
            pinned_nodes.end()) {
          continue;
        }
        if (r.bytes > victim_bytes) {
          victim = id;
          victim_bytes = r.bytes;
        }
      }
      KF_REQUIRE_AS(::kf::CapacityExceeded, victim != kNoNode)
          << "device OOM allocating " << bytes << " bytes for '" << label
          << "' with nothing spillable (" << memory.used() << "/" << memory.capacity()
          << " in use)";
      ++report.spill_count;
      spill_to_host(victim, Category::kRoundTrip);
    }
    return memory.Allocate(bytes, label);
  };

  // Uploads a host-resident node wholesale (allocating device space).
  auto ensure_resident = [&](NodeId id, const std::vector<NodeId>& pinned_nodes) {
    Residency& r = residency[id];
    if (r.on_device) return;
    KF_REQUIRE(r.on_host) << "node #" << id << " lost";
    r.alloc = allocate_with_spill(r.bytes, graph.node(id).name, pinned_nodes);
    CommandSpec copy = device_.MakeCopy(r.bytes, sim::CopyDirection::kHostToDevice,
                                        options.host_memory, graph.node(id).name + "/h2d");
    if (r.ready.has_value()) copy.dependencies.push_back(*r.ready);
    const Category category =
        graph.node(id).is_source ? Category::kInputOutput : Category::kRoundTrip;
    r.ready = issue(main_stream, std::move(copy), category, r.bytes);
    r.on_device = true;
  };

  spill_to_host = [&](NodeId id, Category category) {
    Residency& r = residency[id];
    KF_REQUIRE(r.on_device) << "spill of non-resident node #" << id;
    CommandSpec copy = device_.MakeCopy(r.bytes, sim::CopyDirection::kDeviceToHost,
                                        options.host_memory, graph.node(id).name + "/d2h");
    if (r.ready.has_value()) copy.dependencies.push_back(*r.ready);
    r.ready = issue(main_stream, std::move(copy), category, r.bytes);
    r.on_host = true;
    r.on_device = false;
    if (r.alloc.has_value()) {
      memory.Free(*r.alloc);
      r.alloc.reset();
    }
  };

  const std::uint64_t device_budget = static_cast<std::uint64_t>(
      static_cast<double>(device_.spec().mem_capacity_bytes) *
      options.device_memory_budget);

  // Host-side cost of each cluster, needed when a cluster may run on the CPU:
  // every cluster under force_host, any persistently failing cluster when an
  // injector is attached (graceful degradation), and every cluster when a
  // calibrator drives adaptive CPU/GPU placement.
  std::optional<HeterogeneousScheduler> hetero;
  if (options.fault_injector != nullptr || options.force_host ||
      calib != nullptr || audit_on) {
    hetero.emplace(device_, cost_model_);
    if (calib != nullptr) hetero->set_calibration(calib);
  }
  std::vector<SimTime> cluster_host_time(plan.clusters.size(), 0.0);

  auto cluster_label = [&](const FusionCluster& cluster) {
    std::string label;
    for (std::size_t m = 0; m < cluster.nodes.size(); ++m) {
      if (m) label += "+";
      label += graph.node(cluster.nodes[m]).name;
    }
    return label;
  };

  for (std::size_t c = 0; c < plan.clusters.size(); ++c) {
    const FusionCluster& cluster = plan.clusters[c];
    const std::size_t tagged_before = tagged.size();
    if (tracer != nullptr) {
      cluster_spans[c] = tracer->BeginSpan(
          trace_ctx, root_span,
          "cluster " + std::to_string(c) + ": " + cluster_label(cluster),
          "executor", 0.0);
      trace_cmd_parent = cluster_spans[c];
    }
    const NodeId primary = cluster.primary_input;
    const OpNode& head = graph.node(cluster.nodes.front());
    const bool barrier_cluster =
        cluster.nodes.size() == 1 && Classify(head.desc.kind) == FusionClass::kBarrier;

    // Realized sizes for every member.
    std::vector<RealizedSizes> member_sizes;
    member_sizes.reserve(cluster.nodes.size());
    for (NodeId id : cluster.nodes) {
      const OpNode& node = graph.node(id);
      RealizedSizes sizes;
      sizes.input_rows = rows.at(node.inputs[0]);
      sizes.input_row_bytes = row_bytes(node.inputs[0]);
      sizes.output_rows = rows.at(id);
      sizes.output_row_bytes = row_bytes(id);
      if (node.inputs.size() > 1) sizes.build_bytes = node_bytes(node.inputs[1]);
      member_sizes.push_back(sizes);
    }

    std::optional<PlacementDecision> placement;
    if (hetero.has_value()) {
      placement = hetero->Decide(graph, cluster, member_sizes);
      cluster_host_time[c] = placement->host_time;
    }

    // Calibrated CPU/GPU placement: run the cluster on the host engine when
    // the measured ratios say the CPU wins and its inputs are host-resident
    // anyway. Exploration guard: until the calibrator has device samples it
    // stays on the device, so a pessimistically believed model cannot starve
    // itself of the very observations that would correct it. Placement is
    // timing-only — functional results are always computed host-side first.
    bool run_on_host = options.force_host;
    if (!run_on_host && calib != nullptr && placement.has_value() &&
        placement->placement == Placement::kHost && !calib->NeedsExploration()) {
      bool inputs_on_host =
          residency[primary].on_host && !residency[primary].on_device;
      for (NodeId build : cluster.build_inputs) {
        const Residency& r = residency[build];
        inputs_on_host = inputs_on_host && r.on_host && !r.on_device;
      }
      if (inputs_on_host) {
        run_on_host = true;
        ++report.host_placed_clusters;
        if (tracer != nullptr) {
          tracer->Annotate(trace_ctx, cluster_spans[c],
                           obs::SpanAnnotationKind::kPlacement,
                           "calibrated host placement", 0.0);
        }
        metrics
            .GetCounter("calib.host_placements",
                        obs::Labels{{"strategy", ToString(options.strategy)}})
            .Increment();
      }
    }

    if (run_on_host) {
      // Circuit-breaker open (or explicit CPU run): the whole cluster becomes
      // one host-engine command. The host never faults, inputs and outputs
      // stay in host memory, and nothing touches the device.
      begin_unit(static_cast<int>(c));
      CommandSpec work;
      work.kind = sim::CommandKind::kHostCompute;
      work.duration = cluster_host_time[c];
      work.label = "host/" + cluster_label(cluster);
      if (residency[primary].ready.has_value()) {
        work.dependencies.push_back(*residency[primary].ready);
      }
      for (NodeId build : cluster.build_inputs) {
        if (residency[build].ready.has_value()) {
          work.dependencies.push_back(*residency[build].ready);
        }
      }
      const CommandId host_id =
          issue(main_stream, std::move(work), Category::kCompute, 0);
      for (NodeId out : cluster.outputs) {
        Residency& r = residency[out];
        r.on_host = true;
        r.on_device = false;
        r.ready = host_id;
      }
      if (options.force_host) report.ran_on_host = true;

      ExecutionReport::ClusterTiming timing;
      timing.label = cluster_label(cluster);
      timing.compute = cluster_host_time[c];
      timing.launches = 1;
      timing.fused = fuse && cluster.fused();
      report.cluster_timings.push_back(std::move(timing));

      if (tracer != nullptr) {
        pending_interval_spans.push_back(
            {cluster_spans[c], tagged_before, tagged.size()});
        trace_cmd_parent = root_span;
      }
      release_use(primary);
      for (NodeId build : cluster.build_inputs) release_use(build);
      continue;
    }

    // Device path. The cluster prologue (build uploads) and the resident
    // execution form one retry unit; each fission segment below opens its own.
    begin_unit(static_cast<int>(c));

    // Output routing: a cluster output goes to host when it is a sink or the
    // round-trip policy is active; otherwise it stays resident.
    std::uint64_t outputs_bytes = 0;
    for (NodeId out : cluster.outputs) outputs_bytes += node_bytes(out);
    const std::uint64_t input_bytes = node_bytes(primary);

    // Build inputs must be fully resident before the cluster streams.
    std::vector<NodeId> pinned_nodes = cluster.build_inputs;
    pinned_nodes.push_back(primary);
    for (NodeId out : cluster.outputs) pinned_nodes.push_back(out);
    for (NodeId build : cluster.build_inputs) ensure_resident(build, pinned_nodes);

    const bool primary_on_host = !residency[primary].on_device;
    const bool streamable = !barrier_cluster && primary_on_host;

    // Stage category this cluster's kernels calibrate under.
    const KernelClass kernel_class = barrier_cluster ? KernelClass::kBarrier
                                     : fuse          ? KernelClass::kFused
                                                     : KernelClass::kStaged;

    // Kernel profiles for one segment (scale sizes by 1/segments).
    auto segment_profiles = [&](int seg_count) {
      std::vector<sim::KernelProfile> profiles;
      auto scale = [&](RealizedSizes s) {
        s.input_rows /= static_cast<std::uint64_t>(seg_count);
        s.output_rows /= static_cast<std::uint64_t>(seg_count);
        // Build sides stay resident across segments; each segment probes its
        // share of them rather than re-reading the whole table.
        s.build_bytes /= static_cast<std::uint64_t>(seg_count);
        return s;
      };
      if (fuse && !barrier_cluster) {
        std::vector<RealizedSizes> scaled;
        scaled.reserve(member_sizes.size());
        for (const RealizedSizes& s : member_sizes) scaled.push_back(scale(s));
        profiles = cost_model_.FusedProfiles(graph, cluster, scaled);
      } else {
        for (std::size_t m = 0; m < cluster.nodes.size(); ++m) {
          auto member_profiles =
              cost_model_.UnfusedProfiles(graph.node(cluster.nodes[m]),
                                          scale(member_sizes[m]));
          for (auto& p : member_profiles) profiles.push_back(std::move(p));
        }
      }
      return profiles;
    };

    int segments = 1;
    if (streamable) {
      const std::uint64_t working = input_bytes + outputs_bytes;
      if (working > device_budget) {
        segments = static_cast<int>(DivCeil(working, device_budget));
      }
      if (fission) {
        if (calib != nullptr) {
          // Adaptive fission sizing: the segment count minimizing the
          // calibrated pipeline makespan, never below the capacity floor. A
          // choice of 1 replans the cluster back to resident execution (the
          // overlap win does not cover per-segment latency and launches).
          PipelineEstimate estimate;
          estimate.h2d_bytes = input_bytes;
          for (NodeId out : cluster.outputs) {
            if (std::find(sinks.begin(), sinks.end(), out) != sinks.end()) {
              estimate.d2h_bytes += node_bytes(out);
            }
          }
          estimate.host_memory = options.host_memory;
          estimate.launches = 0;
          for (const sim::KernelProfile& profile : segment_profiles(1)) {
            estimate.kernel_time += calib->EstimateKernelTime(kernel_class, profile);
            estimate.launches += profile.launches;
          }
          segments = calib->PlanFissionSegments(estimate, segments);
          metrics
              .GetGauge("calib.segments",
                        obs::Labels{{"strategy", ToString(options.strategy)}})
              .Set(static_cast<double>(segments));
        } else {
          segments = std::max(segments, options.fission_segments);
        }
      }
    }

    // Decide per-output destination.
    std::map<NodeId, bool> output_to_host;
    for (NodeId out : cluster.outputs) {
      const bool is_sink =
          std::find(sinks.begin(), sinks.end(), out) != sinks.end();
      const bool has_consumers = residency[out].pending_uses > (is_sink ? 1 : 0);
      bool to_host = is_sink && !has_consumers;
      if (options.intermediates == IntermediatePolicy::kRoundTrip && has_consumers) {
        to_host = true;
      }
      // Outputs too large to keep resident must stream out.
      if (!to_host && segments > 1 && outputs_bytes > device_budget / 2) to_host = true;
      output_to_host[out] = to_host;
    }

    if (segments <= 1) {
      // --- Resident execution: whole input on device, kernels in stream 0. --
      ensure_resident(primary, pinned_nodes);
      for (NodeId out : cluster.outputs) {
        Residency& r = residency[out];
        r.alloc = allocate_with_spill(r.bytes, graph.node(out).name, pinned_nodes);
        r.on_device = true;
        r.on_host = false;
      }
      // Unfused members materialize their intermediates in device memory for
      // the duration of the cluster (fused kernels keep them in registers).
      std::optional<sim::AllocationId> transient;
      if (!fuse || barrier_cluster) {
        std::uint64_t transient_bytes = 0;
        for (NodeId member : cluster.nodes) {
          if (std::find(cluster.outputs.begin(), cluster.outputs.end(), member) ==
              cluster.outputs.end()) {
            transient_bytes += node_bytes(member);
          }
        }
        if (transient_bytes > 0) {
          transient = allocate_with_spill(transient_bytes, "intermediates",
                                          pinned_nodes);
        }
      }
      std::optional<CommandId> last;
      for (const sim::KernelProfile& profile : segment_profiles(1)) {
        CommandSpec kernel = device_.MakeKernel(profile);
        if (residency[primary].ready.has_value()) {
          kernel.dependencies.push_back(*residency[primary].ready);
        }
        for (NodeId build : cluster.build_inputs) {
          if (residency[build].ready.has_value()) {
            kernel.dependencies.push_back(*residency[build].ready);
          }
        }
        last = issue(main_stream, std::move(kernel), Category::kCompute, 0,
                     profile.launches);
        if (calib != nullptr) {
          pending_kernel_obs.push_back(
              PendingKernelObs{profile, kernel_class, tagged.size() - 1});
        }
      }
      if (transient.has_value()) memory.Free(*transient);
      for (NodeId out : cluster.outputs) {
        residency[out].ready = last;
        if (output_to_host[out]) {
          const bool is_sink =
              std::find(sinks.begin(), sinks.end(), out) != sinks.end();
          spill_to_host(out, is_sink ? Category::kInputOutput : Category::kRoundTrip);
        }
      }
    } else {
      // --- Segmented execution (Fig 13/15): H2D, kernels, D2H per segment;
      // fission spreads segments over the stream pool, serial keeps one
      // stream so everything serializes (Fig 14's baseline). ------------------
      const std::vector<sim::KernelProfile> profiles = segment_profiles(segments);
      // Segment staging buffers (double-buffered per active stream).
      const int active = fission ? stream_count : 1;
      const std::uint64_t staging =
          (input_bytes + outputs_bytes) / static_cast<std::uint64_t>(segments) *
          static_cast<std::uint64_t>(std::min(segments, active * 2));
      const sim::AllocationId staging_alloc =
          allocate_with_spill(std::min(staging, memory.free_bytes()),
                              "segment staging", pinned_nodes);

      // Device-resident outputs accumulate across segments.
      for (NodeId out : cluster.outputs) {
        if (!output_to_host[out]) {
          Residency& r = residency[out];
          r.alloc = allocate_with_spill(r.bytes, graph.node(out).name, pinned_nodes);
          r.on_device = true;
          r.on_host = false;
        }
      }

      std::vector<CommandId> segment_outputs;
      std::vector<CommandId> last_kernels;
      for (int s = 0; s < segments; ++s) {
        begin_unit(static_cast<int>(c));  // each segment retries independently
        const std::size_t segment_tagged_before = tagged.size();
        if (tracer != nullptr) {
          const obs::SpanId segment_span = tracer->BeginSpan(
              trace_ctx, cluster_spans[c], "segment " + std::to_string(s),
              "executor", 0.0);
          trace_cmd_parent = segment_span;
          pending_interval_spans.push_back(
              {segment_span, segment_tagged_before, 0});  // end patched below
        }
        const stream::StreamHandle stream =
            fission ? handles[static_cast<std::size_t>(s) % handles.size()]
                    : main_stream;
        CommandSpec copy_in = device_.MakeCopy(
            input_bytes / static_cast<std::uint64_t>(segments),
            sim::CopyDirection::kHostToDevice, options.host_memory,
            graph.node(primary).name + "/h2d[" + std::to_string(s) + "]");
        const Category in_category = graph.node(primary).is_source
                                         ? Category::kInputOutput
                                         : Category::kRoundTrip;
        issue(stream, std::move(copy_in), in_category,
              input_bytes / static_cast<std::uint64_t>(segments));

        std::optional<CommandId> last;
        for (const sim::KernelProfile& profile : profiles) {
          CommandSpec kernel = device_.MakeKernel(profile);
          for (NodeId build : cluster.build_inputs) {
            if (residency[build].ready.has_value()) {
              kernel.dependencies.push_back(*residency[build].ready);
            }
          }
          last = issue(stream, std::move(kernel), Category::kCompute, 0,
                       profile.launches);
          if (calib != nullptr) {
            pending_kernel_obs.push_back(
                PendingKernelObs{profile, kernel_class, tagged.size() - 1});
          }
        }
        if (last.has_value()) last_kernels.push_back(*last);

        std::uint64_t host_bound_bytes = 0;
        for (NodeId out : cluster.outputs) {
          if (output_to_host[out]) host_bound_bytes += node_bytes(out);
        }
        if (host_bound_bytes > 0) {
          const std::uint64_t segment_bytes =
              host_bound_bytes / static_cast<std::uint64_t>(segments);
          CommandSpec copy_out = device_.MakeCopy(
              segment_bytes, sim::CopyDirection::kDeviceToHost, options.host_memory,
              "result/d2h[" + std::to_string(s) + "]");
          bool sink_bound = false;
          for (NodeId out : cluster.outputs) {
            if (output_to_host[out] &&
                std::find(sinks.begin(), sinks.end(), out) != sinks.end()) {
              sink_bound = true;
            }
          }
          const CommandId d2h_id =
              issue(stream, std::move(copy_out),
                    sink_bound ? Category::kInputOutput : Category::kRoundTrip,
                    segment_bytes);
          segment_outputs.push_back(d2h_id);

          // Out-of-order host arrival needs a CPU-side gather (Fig 15): each
          // segment is repositioned as it lands, overlapping the pipeline
          // (the host engine is idle while the device streams).
          if (fission) {
            CommandSpec gather = device_.MakeHostWork(
                2 * segment_bytes, "cpu-gather[" + std::to_string(s) + "]");
            gather.dependencies = {d2h_id};
            issue(main_stream, std::move(gather), Category::kHostGather,
                  segment_bytes);
          }
        }
        if (tracer != nullptr) {
          pending_interval_spans.back().end = tagged.size();
          trace_cmd_parent = cluster_spans[c];
        }
      }

      for (NodeId out : cluster.outputs) {
        Residency& r = residency[out];
        if (output_to_host[out]) {
          r.on_host = true;
          r.on_device = false;
          r.ready = segment_outputs.empty() ? std::nullopt
                                            : std::optional(segment_outputs.back());
        } else {
          r.ready = last_kernels.empty() ? std::nullopt
                                         : std::optional(last_kernels.back());
        }
      }
      memory.Free(staging_alloc);
    }

    // Sampled host audit: re-execute the cluster on the host engine and
    // compare bytes (host time + one digest pass over the outputs), after
    // every output is complete. Runs on the crc stream, inside the cluster's
    // last retry unit, so a healed re-execution is re-audited.
    if (audit_on && audited[c] != 0) {
      ++report.audited_clusters;
      CommandSpec audit =
          device_.MakeHostWork(outputs_bytes, cluster_label(cluster) + "/audit");
      audit.duration += cluster_host_time[c];
      for (NodeId out : cluster.outputs) {
        if (residency[out].ready.has_value()) {
          audit.dependencies.push_back(*residency[out].ready);
        }
      }
      issue(crc_stream, std::move(audit), Category::kIntegrity, outputs_bytes);
    }

    // Per-cluster compute accounting for the report.
    ExecutionReport::ClusterTiming timing;
    timing.fused = fuse && cluster.fused();
    timing.label = cluster_label(cluster);
    for (std::size_t i = tagged_before; i < tagged.size(); ++i) {
      if (tagged[i].category == Category::kCompute) {
        timing.compute += tagged[i].duration;
        timing.launches += static_cast<std::size_t>(std::max(1, tagged[i].launches));
      }
    }
    report.cluster_timings.push_back(std::move(timing));

    if (tracer != nullptr) {
      pending_interval_spans.push_back(
          {cluster_spans[c], tagged_before, tagged.size()});
      trace_cmd_parent = root_span;
    }

    // Inputs consumed.
    release_use(primary);
    for (NodeId build : cluster.build_inputs) release_use(build);
  }

  // Final downloads for sinks still on the device (each its own retry unit,
  // owned by the cluster that produced the sink).
  for (NodeId sink : sinks) {
    if (residency[sink].on_device) {
      begin_unit(plan.cluster_of[static_cast<std::size_t>(sink)]);
      spill_to_host(sink, Category::kInputOutput);
    }
    release_use(sink);
  }

  // --- Simulate. --------------------------------------------------------------
  if (tracer != nullptr) {
    // Leaf spans: one per stream command, parented to its cluster/segment
    // span. cmd_parents/cmd_categories are indexed in issue order, which is
    // exactly the pool's command-id order.
    stream::PoolTraceSink sink;
    sink.tracer = tracer;
    sink.context = trace_ctx;
    sink.parent = root_span;
    sink.parents = cmd_parents;
    sink.categories = cmd_categories;
    streams.set_trace(std::move(sink));
  }
  streams.StartStreams();
  report.timeline = streams.WaitAll();
  SimTime total_makespan = report.timeline.makespan;
  report.fault_count = report.timeline.fault_count;

  // Resolve structural span intervals now that command times are known.
  if (tracer != nullptr) {
    for (const PendingIntervalSpan& pending : pending_interval_spans) {
      double lo = 0.0, hi = 0.0;
      bool any = false;
      for (std::size_t i = pending.begin; i < pending.end; ++i) {
        const sim::CommandTiming& timing = report.timeline.commands[tagged[i].id];
        lo = any ? std::min(lo, timing.start) : timing.start;
        hi = any ? std::max(hi, timing.end) : timing.end;
        any = true;
      }
      if (any) {
        tracer->SetSpanInterval(trace_ctx, pending.span, lo, hi);
      } else {
        tracer->EndSpan(trace_ctx, pending.span, 0.0);
      }
    }
  }

  // --- Feed per-command outcomes back into the calibrator (main run only;
  // retries below re-execute under fault pressure and would bias the model).
  if (calib != nullptr) {
    for (const PendingCopyObs& obs : pending_copy_obs) {
      const TaggedCommand& cmd = tagged[obs.tagged_index];
      const sim::CommandTiming& timing = report.timeline.commands[cmd.id];
      if (!timing.ok) continue;
      calib->ObserveCopy(obs.direction, options.host_memory, obs.bytes,
                         timing.end - timing.start);
    }
    for (const PendingKernelObs& obs : pending_kernel_obs) {
      const TaggedCommand& cmd = tagged[obs.tagged_index];
      if (!report.timeline.commands[cmd.id].ok) continue;
      calib->ObserveKernel(obs.cls, obs.profile, cmd.duration);
    }
    calib->ObserveStalls(report.timeline.commands.size(),
                         report.timeline.stall_count);
    calib->EndRun();
    if (tracer != nullptr) {
      tracer->Annotate(trace_ctx, root_span,
                       obs::SpanAnnotationKind::kCalibrationEpoch,
                       "epoch " + std::to_string(calib->epoch()),
                       total_makespan);
    }
    const obs::Labels calib_labels{{"strategy", ToString(options.strategy)}};
    metrics.GetGauge("calib.epoch", calib_labels)
        .Set(static_cast<double>(calib->epoch()));
    metrics.GetGauge("calib.estimate_error", calib_labels).Set(calib->error());
  }

  const ResilienceOptions& res = options.resilience;
  auto check_deadline = [&] {
    KF_REQUIRE_AS(::kf::Timeout,
                  res.deadline <= 0 || total_makespan <= res.deadline)
        << "query exceeded its deadline of " << res.deadline
        << "s (simulated clock at " << total_makespan << "s)";
  };

  // Clusters whose accepted results carry unnoticed corruption: their
  // downstream sinks get a real bit flipped below.
  std::set<std::size_t> silent_clusters;

  if (options.fault_injector != nullptr &&
      (report.timeline.fault_count > 0 || report.timeline.corrupted_count > 0)) {
    // --- Fault + corruption recovery: re-issue troubled retry units on a
    // fresh single-stream pool with exponential backoff in virtual time. A
    // unit retries when a command failed outright (loud) OR a verification
    // point caught corrupted bytes; units that exhaust their budget degrade
    // their cluster to the host engine (or throw, typed by cause). ----------
    std::vector<std::vector<std::size_t>> unit_members(unit_cluster.size());
    for (std::size_t i = 0; i < tagged.size(); ++i) {
      if (tagged[i].unit >= 0) {
        unit_members[static_cast<std::size_t>(tagged[i].unit)].push_back(i);
      }
    }

    // Whether corruption of `kind` inside `unit` is caught: transfers by the
    // checksum chasers, kernels by the owning cluster's host audit.
    auto caught = [&](sim::CommandKind kind, int unit) {
      if (kind == sim::CommandKind::kCopyH2D ||
          kind == sim::CommandKind::kCopyD2H) {
        return verify_transfers;
      }
      if (kind == sim::CommandKind::kKernel) {
        const int cluster = unit_cluster[static_cast<std::size_t>(unit)];
        return audit_on && audited[static_cast<std::size_t>(cluster)] != 0;
      }
      return false;  // host commands never corrupt
    };

    struct UnitIssue {
      bool loud = false;       // some command failed outright
      bool detected = false;   // verification caught corrupted bytes
      std::size_t silent = 0;  // corrupt commands nothing noticed
    };
    std::map<int, UnitIssue> unit_issues;  // ordered: deterministic retries
    for (std::size_t i = 0; i < tagged.size(); ++i) {
      const sim::CommandTiming& timing = report.timeline.commands[tagged[i].id];
      if (!timing.ok) {
        unit_issues[tagged[i].unit].loud = true;
      } else if (timing.corrupted) {
        ++report.corrupted_commands;
        if (caught(tagged[i].kind, tagged[i].unit)) {
          ++report.corruption_detected;
          unit_issues[tagged[i].unit].detected = true;
        } else {
          ++unit_issues[tagged[i].unit].silent;
        }
      }
    }

    // Units where nothing was noticed never re-execute: their wrong bytes
    // flow on silently (realized as real sink bit flips below).
    for (auto it = unit_issues.begin(); it != unit_issues.end();) {
      if (!it->second.loud && !it->second.detected) {
        if (it->second.silent > 0) {
          report.corruption_undetected += it->second.silent;
          silent_clusters.insert(static_cast<std::size_t>(
              unit_cluster[static_cast<std::size_t>(it->first)]));
        }
        it = unit_issues.erase(it);
      } else {
        ++it;
      }
    }

    const int corruption_budget = std::max(0, integ.max_reexecutions);
    std::set<int> failed_loud;     // exhausted loud-fault retries
    std::set<int> failed_corrupt;  // kept returning corrupt bytes
    for (auto& [unit, issue_state] : unit_issues) {
      ++report.retried_units;
      const int budget =
          std::max(issue_state.loud ? res.max_retries : 0,
                   issue_state.detected ? corruption_budget : 0);
      bool recovered = false;
      bool last_loud = issue_state.loud;
      bool last_detected = issue_state.detected;
      for (int attempt = 1; attempt <= budget; ++attempt) {
        const SimTime retry_span_start = total_makespan;
        const SimTime backoff =
            res.backoff_base * std::pow(res.backoff_factor, attempt - 1);
        total_makespan += backoff;
        report.backoff_time += backoff;
        check_deadline();

        obs::SpanId retry_span = 0;
        if (tracer != nullptr) {
          retry_span = tracer->BeginSpan(
              trace_ctx, root_span,
              "retry unit " + std::to_string(unit) + " attempt " +
                  std::to_string(attempt),
              "executor", retry_span_start);
          const std::string where =
              "cluster '" +
              cluster_label(
                  plan.clusters[static_cast<std::size_t>(
                      unit_cluster[static_cast<std::size_t>(unit)])]) +
              "'";
          tracer->Annotate(trace_ctx, retry_span,
                           obs::SpanAnnotationKind::kReExecution,
                           (last_loud ? "fault in " : "re-execution of ") + where,
                           retry_span_start);
          if (last_detected) {
            tracer->Annotate(trace_ctx, retry_span,
                             obs::SpanAnnotationKind::kCorruptionDetected,
                             "corrupted bytes detected in " + where,
                             retry_span_start);
          }
        }

        // Rebuild the unit's commands on a fresh stream. Dependencies inside
        // the unit are remapped; dependencies on other units are dropped —
        // their producers completed in the original run.
        stream::StreamPool retry_pool(device_, 1, &metrics,
                                      options.fault_injector);
        const stream::StreamHandle retry_stream =
            retry_pool.GetAvailableStream();
        std::unordered_map<CommandId, CommandId> remap;
        const auto& members = unit_members[static_cast<std::size_t>(unit)];
        for (std::size_t i : members) {
          CommandSpec spec = specs[i];
          std::vector<CommandId> deps;
          for (CommandId dep : spec.dependencies) {
            auto it = remap.find(dep);
            if (it != remap.end()) deps.push_back(it->second);
          }
          spec.dependencies = std::move(deps);
          remap.emplace(tagged[i].id,
                        retry_pool.SetStreamCommand(
                            retry_stream,
                            stream::PoolCommand{std::move(spec), {}}));
        }
        if (tracer != nullptr) {
          stream::PoolTraceSink sink;
          sink.tracer = tracer;
          sink.context = trace_ctx;
          sink.parent = retry_span;
          sink.sim_base = total_makespan;  // retries start after the backoff
          for (std::size_t i : members) {
            sink.categories.push_back(CategoryName(tagged[i].category));
          }
          retry_pool.set_trace(std::move(sink));
        }
        retry_pool.StartStreams();
        const sim::TimelineStats& retry_stats = retry_pool.WaitAll();
        ++report.retry_attempts;
        if (last_detected) ++report.corruption_reexecutions;
        total_makespan += retry_stats.makespan;
        report.fault_count += retry_stats.fault_count;
        if (tracer != nullptr) {
          tracer->EndSpan(trace_ctx, retry_span, total_makespan);
        }
        check_deadline();

        // Classify this attempt. Retry-pool command k re-ran members[k], so
        // corruption is judged against the original command's kind/unit.
        bool retry_loud = !retry_stats.AllOk();
        bool retry_detected = false;
        std::size_t retry_silent = 0;
        for (std::size_t k = 0; k < members.size(); ++k) {
          const sim::CommandTiming& timing = retry_stats.commands[k];
          if (!timing.ok || !timing.corrupted) continue;
          ++report.corrupted_commands;
          if (caught(tagged[members[k]].kind, unit)) {
            ++report.corruption_detected;
            retry_detected = true;
          } else {
            ++retry_silent;
          }
        }
        last_loud = retry_loud;
        last_detected = retry_detected;
        if (!retry_loud && !retry_detected) {
          recovered = true;
          // Accepted attempt: any unnoticed corruption in it is final.
          if (retry_silent > 0) {
            report.corruption_undetected += retry_silent;
            silent_clusters.insert(static_cast<std::size_t>(
                unit_cluster[static_cast<std::size_t>(unit)]));
          }
          break;
        }
      }
      if (!recovered) {
        const int cluster = unit_cluster[static_cast<std::size_t>(unit)];
        if (last_loud) {
          failed_loud.insert(cluster);
        } else {
          failed_corrupt.insert(cluster);
        }
      }
    }

    std::set<int> failed_clusters = failed_loud;
    failed_clusters.insert(failed_corrupt.begin(), failed_corrupt.end());
    for (int failed_cluster : failed_clusters) {
      const std::string label =
          cluster_label(plan.clusters[static_cast<std::size_t>(failed_cluster)]);
      if (!res.degrade_to_host) {
        KF_REQUIRE_AS(::kf::DeviceFault, failed_loud.count(failed_cluster) == 0)
            << "cluster '" << label << "' still failing after "
            << res.max_retries << " retries";
        KF_FAIL_AS(::kf::DataCorruption)
            << "cluster '" << label << "' still returning corrupt bytes after "
            << corruption_budget << " re-executions";
      }
      // Graceful degradation: rerun the whole cluster on the host engine.
      // Functional results were computed host-side up front, so the answer is
      // byte-identical; only the simulated clock pays the host cost. The host
      // rerun replaces the cluster's outputs wholesale, washing out any
      // silent corruption previously recorded for it.
      const SimTime degrade_start = total_makespan;
      total_makespan += cluster_host_time[static_cast<std::size_t>(failed_cluster)];
      ++report.degraded_clusters;
      report.degraded = true;
      silent_clusters.erase(static_cast<std::size_t>(failed_cluster));
      if (tracer != nullptr) {
        const obs::SpanId cluster_span =
            cluster_spans[static_cast<std::size_t>(failed_cluster)];
        tracer->Annotate(trace_ctx, cluster_span,
                         obs::SpanAnnotationKind::kDegraded,
                         "degraded to host engine after exhausted retries",
                         degrade_start);
        tracer->AddSpan(trace_ctx, cluster_span, "degraded host rerun: " + label,
                        "host", degrade_start, total_makespan, "compute");
      }
      check_deadline();
    }
  }
  report.silent_corruption = !silent_clusters.empty();
  check_deadline();

  report.makespan = total_makespan;
  report.timeline.makespan = total_makespan;
  report.peak_device_bytes = memory.high_water_mark();
  report.leaked_device_bytes = memory.used();

  if (tracer != nullptr) {
    if (options.force_host) {
      tracer->Annotate(trace_ctx, root_span, obs::SpanAnnotationKind::kPlacement,
                       "force_host: all clusters on the host engine", 0.0);
    }
    if (report.corruption_undetected > 0) {
      tracer->Annotate(trace_ctx, root_span, obs::SpanAnnotationKind::kCorruption,
                       std::to_string(report.corruption_undetected) +
                           " corruption(s) escaped detection",
                       total_makespan);
    }
    tracer->EndSpan(trace_ctx, root_span, total_makespan);
    // Span-derived totals for the report: root coverage plus main-run leaf
    // occupancy per stage category (cross-checkable against the stage sums
    // below — exact on fault-free serial runs, where commands never share
    // an engine or stretch under stalls).
    report.trace_covered = total_makespan;
    for (std::size_t i = 0; i < tagged.size(); ++i) {
      const sim::CommandTiming& timing = report.timeline.commands[tagged[i].id];
      report.trace_stage_seconds[CategoryName(tagged[i].category)] +=
          timing.end - timing.start;
    }
    report.trace_spans =
        tracer->Snapshot(trace_ctx.query_id).spans.size() -
        (static_cast<std::size_t>(root_span) - 1);
  }

  for (const TaggedCommand& cmd : tagged) {
    switch (cmd.category) {
      case Category::kInputOutput:
        report.input_output_time += cmd.duration;
        break;
      case Category::kRoundTrip:
        report.round_trip_time += cmd.duration;
        break;
      case Category::kCompute:
        report.compute_time += cmd.duration;
        report.kernel_launches += static_cast<std::size_t>(std::max(1, cmd.launches));
        break;
      case Category::kHostGather:
        report.host_gather_time += cmd.duration;
        break;
      case Category::kIntegrity:
        report.integrity_time += cmd.duration;
        break;
    }
  }
  for (const TaggedCommand& cmd : tagged) {
    if (cmd.kind == sim::CommandKind::kCopyH2D) report.h2d_bytes += cmd.bytes;
    if (cmd.kind == sim::CommandKind::kCopyD2H) report.d2h_bytes += cmd.bytes;
  }

  if (sources != nullptr) {
    for (NodeId sink : sinks) {
      auto it = computed.find(sink);
      if (it != computed.end()) {
        report.sink_results.emplace(sink, it->second);
      } else if (sources->count(sink) != 0) {
        report.sink_results.emplace(sink, sources->at(sink));
      }
    }

    // Undetected corruption becomes real wrong answers: flip a deterministic
    // bit in every sink table downstream-reachable from a silently-corrupted
    // cluster. Only the returned copies are touched, never `computed` — the
    // ground truth stays available to callers that re-run with verification.
    for (std::size_t c : silent_clusters) {
      std::set<NodeId> reached;
      std::vector<NodeId> frontier(plan.clusters[c].outputs.begin(),
                                   plan.clusters[c].outputs.end());
      while (!frontier.empty()) {
        const NodeId n = frontier.back();
        frontier.pop_back();
        if (!reached.insert(n).second) continue;
        for (NodeId consumer : graph.Consumers(n)) frontier.push_back(consumer);
      }
      const std::uint64_t base_seed =
          options.fault_injector != nullptr
              ? options.fault_injector->config().seed
              : 0;
      for (NodeId sink : sinks) {
        if (reached.count(sink) == 0) continue;
        auto it = report.sink_results.find(sink);
        if (it == report.sink_results.end()) continue;
        std::uint64_t state =
            base_seed ^ (c * 0x9e3779b97f4a7c15ULL) ^
            (static_cast<std::uint64_t>(sink) * 0xbf58476d1ce4e5b9ULL) ^
            0x626974ULL;  // "bit"
        FlipRandomBit(it->second, SplitMix64(state));
      }
    }
  }

  // --- Record the run into the metrics registry, labeled by strategy. Counters
  // accumulate across runs; gauges hold the most recent run; histograms keep
  // every simulated duration. -------------------------------------------------
  const obs::Labels by_strategy{{"strategy", ToString(options.strategy)}};
  metrics.GetCounter("executor.runs", by_strategy).Increment();
  metrics.GetCounter("executor.kernel_launches", by_strategy)
      .Increment(report.kernel_launches);
  metrics.GetCounter("executor.h2d_bytes", by_strategy).Increment(report.h2d_bytes);
  metrics.GetCounter("executor.d2h_bytes", by_strategy).Increment(report.d2h_bytes);
  metrics.GetCounter("executor.spills", by_strategy).Increment(report.spill_count);
  metrics.GetCounter("executor.clusters", by_strategy).Increment(report.cluster_count);
  metrics.GetCounter("executor.fused_clusters", by_strategy)
      .Increment(report.fused_cluster_count);
  metrics.GetHistogram("executor.makespan_seconds", by_strategy)
      .Record(report.makespan);
  auto record_stage = [&](const char* stage, SimTime duration) {
    obs::Labels labels = by_strategy;
    labels.emplace_back("stage", stage);
    metrics.GetHistogram("executor.stage_seconds", labels).Record(duration);
  };
  record_stage("input_output", report.input_output_time);
  record_stage("round_trip", report.round_trip_time);
  record_stage("compute", report.compute_time);
  record_stage("host_gather", report.host_gather_time);
  auto record_busy = [&](const char* engine, SimTime busy) {
    obs::Labels labels = by_strategy;
    labels.emplace_back("engine", engine);
    metrics.GetGauge("executor.engine_busy_seconds", labels).Set(busy);
  };
  record_busy("h2d", report.timeline.h2d_busy);
  record_busy("d2h", report.timeline.d2h_busy);
  record_busy("compute", report.timeline.compute_busy);
  record_busy("host", report.timeline.host_busy);
  metrics.GetGauge("executor.peak_device_bytes", by_strategy)
      .Set(static_cast<double>(report.peak_device_bytes));
  if (options.fault_injector != nullptr || options.force_host) {
    if (report.fault_count > 0) {
      metrics.GetCounter("resilience.faults_observed", by_strategy)
          .Increment(report.fault_count);
    }
    if (report.retry_attempts > 0) {
      metrics.GetCounter("resilience.unit_retries", by_strategy)
          .Increment(report.retry_attempts);
    }
    if (report.degraded_clusters > 0) {
      metrics.GetCounter("resilience.degraded_clusters", by_strategy)
          .Increment(report.degraded_clusters);
    }
    if (report.backoff_time > 0) {
      metrics.GetHistogram("resilience.backoff_seconds", by_strategy)
          .Record(report.backoff_time);
    }
    if (report.ran_on_host) {
      metrics.GetCounter("resilience.host_runs", by_strategy).Increment();
    }
  }
  if (integ.Enabled() || report.corrupted_commands > 0) {
    if (checksummed_bytes > 0) {
      metrics.GetCounter("integrity.checksummed_bytes", by_strategy)
          .Increment(checksummed_bytes);
    }
    if (report.audited_clusters > 0) {
      metrics.GetCounter("integrity.audited_clusters", by_strategy)
          .Increment(report.audited_clusters);
    }
    if (report.corrupted_commands > 0) {
      metrics.GetCounter("integrity.corrupted_commands", by_strategy)
          .Increment(report.corrupted_commands);
    }
    if (report.corruption_detected > 0) {
      metrics.GetCounter("integrity.detected", by_strategy)
          .Increment(report.corruption_detected);
    }
    if (report.corruption_undetected > 0) {
      metrics.GetCounter("integrity.undetected", by_strategy)
          .Increment(report.corruption_undetected);
    }
    if (report.corruption_reexecutions > 0) {
      metrics.GetCounter("integrity.reexecutions", by_strategy)
          .Increment(report.corruption_reexecutions);
    }
    if (integ.Enabled()) record_stage("integrity", report.integrity_time);
  }
  // Snapshot of the host-substrate counters (arena reuse, typed/fallback
  // predicate mix) — updated cold, here, never from the kernel hot paths.
  obs::RecordHostPerfMetrics(metrics);

  return report;
}

}  // namespace kf::core
