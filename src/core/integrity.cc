#include "core/integrity.h"

#include <bit>
#include <cstddef>

#include "common/checksum.h"
#include "common/random.h"

namespace kf::core {

namespace {

// Stateless uniform in [0, 1) from a splitmix chain, mirroring
// FaultInjector::Draw so integrity draws are deterministic per coordinate.
double DrawUniform(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t state = a;
  std::uint64_t mixed = SplitMix64(state);
  state ^= b * 0x9e3779b97f4a7c15ULL;
  mixed ^= SplitMix64(state);
  state ^= c * 0xbf58476d1ce4e5b9ULL;
  mixed ^= SplitMix64(state);
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

}  // namespace

std::uint64_t ChecksumTable(const relational::Table& table) {
  Checksummer sum;
  for (const auto& field : table.schema().fields()) {
    sum.Update(field.name.data(), field.name.size());
    const auto type = static_cast<std::uint8_t>(field.type);
    sum.Update(&type, sizeof(type));
  }
  const std::uint64_t rows = table.row_count();
  sum.Update(&rows, sizeof(rows));
  for (std::size_t c = 0; c < table.column_count(); ++c) {
    const relational::Column& col = table.column(c);
    switch (col.type()) {
      case relational::DataType::kInt32: {
        const auto& v = col.AsInt32();
        sum.Update(v.data(), v.size() * sizeof(std::int32_t));
        break;
      }
      case relational::DataType::kInt64: {
        const auto& v = col.AsInt64();
        sum.Update(v.data(), v.size() * sizeof(std::int64_t));
        break;
      }
      case relational::DataType::kFloat64: {
        const auto& v = col.AsFloat64();
        sum.Update(v.data(), v.size() * sizeof(double));
        break;
      }
    }
  }
  return sum.Digest();
}

bool FlipRandomBit(relational::Table& table, std::uint64_t seed) {
  if (table.row_count() == 0 || table.column_count() == 0) return false;
  std::uint64_t state = seed;
  const std::size_t column =
      static_cast<std::size_t>(SplitMix64(state)) % table.column_count();
  relational::Column& col = table.column(column);
  if (col.size() == 0) return false;
  const std::size_t row = static_cast<std::size_t>(SplitMix64(state)) % col.size();
  const std::uint64_t bit_draw = SplitMix64(state);
  switch (col.type()) {
    case relational::DataType::kInt32: {
      auto& v = col.AsInt32();
      v[row] ^= std::int32_t{1} << (bit_draw % 32);
      break;
    }
    case relational::DataType::kInt64: {
      auto& v = col.AsInt64();
      v[row] ^= std::int64_t{1} << (bit_draw % 64);
      break;
    }
    case relational::DataType::kFloat64: {
      auto& v = col.AsFloat64();
      // Flip within the low 52 bits (mantissa): always changes the value
      // without manufacturing NaN/Inf payload edge cases.
      auto bits = std::bit_cast<std::uint64_t>(v[row]);
      bits ^= std::uint64_t{1} << (bit_draw % 52);
      v[row] = std::bit_cast<double>(bits);
      break;
    }
  }
  return true;
}

bool AuditSampled(std::uint64_t audit_seed, std::uint64_t run_salt,
                  std::size_t cluster, double fraction) {
  if (fraction <= 0.0) return false;
  if (fraction >= 1.0) return true;
  return DrawUniform(audit_seed ^ 0x6175646974ULL /* "audit" */, run_salt,
                     cluster) < fraction;
}

}  // namespace kf::core
