// Back-to-back SELECT chains — the paper's primary microbenchmark workload.
//
// Sections III-B and IV evaluate fusion/fission on chains of SELECT
// operators over random 32-bit integers (Fig 2a). This helper builds the
// operator graph, the matching uniform-integer input data, and the exact
// expected row counts so the benchmark harnesses can run either functionally
// (real data through the staged kernels) or in timing-only mode (Figs 14/16
// sweep up to 4 billion elements — 16 GB — which cannot be materialized).
//
// Selectivities are realized with thresholds over the uniform domain
// [0, 2^31): a chain with per-step selectivity s keeps s of the *surviving*
// elements at each step when thresholds are nested (s, s^2, ... overall),
// exactly like the paper's 50%-per-SELECT chains that keep 25% after two.
#ifndef KF_CORE_SELECT_CHAIN_H_
#define KF_CORE_SELECT_CHAIN_H_

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/op_graph.h"
#include "relational/table.h"

namespace kf::core {

struct SelectChain {
  OpGraph graph;
  NodeId source = kNoNode;
  std::vector<NodeId> selects;
  std::uint64_t elements = 0;
  std::vector<double> selectivities;
  // Exact expected output rows per node (uniform-domain arithmetic).
  std::map<NodeId, std::uint64_t> expected_rows;
  // Thresholds used by the predicates (field0 < threshold[i]).
  std::vector<std::int32_t> thresholds;

  std::uint64_t input_bytes() const { return elements * 4; }
};

// Builds a chain of `selectivities.size()` SELECTs over `elements` random
// int32s. Each step keeps `selectivities[i]` of what reaches it.
SelectChain MakeSelectChain(std::uint64_t elements,
                            std::span<const double> selectivities);

// Uniform random input data matching the chain's domain; expected
// selectivities are then exact up to sampling noise.
relational::Table MakeUniformInt32Table(std::uint64_t elements,
                                        std::uint64_t seed = 42);

}  // namespace kf::core

#endif  // KF_CORE_SELECT_CHAIN_H_
