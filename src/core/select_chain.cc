#include "core/select_chain.h"

#include <cmath>

#include "common/error.h"
#include "common/random.h"
#include "relational/operators.h"

namespace kf::core {

using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::Schema;
using relational::Table;

namespace {
constexpr std::int64_t kDomain = std::int64_t{1} << 31;  // values in [0, 2^31)
}  // namespace

SelectChain MakeSelectChain(std::uint64_t elements,
                            std::span<const double> selectivities) {
  KF_REQUIRE_AS(::kf::InvalidArgument, !selectivities.empty()) << "select chain needs at least one step";
  SelectChain chain;
  chain.elements = elements;
  chain.selectivities.assign(selectivities.begin(), selectivities.end());

  chain.source = chain.graph.AddSource(
      "input", Schema{{"v", DataType::kInt32}}, elements);
  chain.expected_rows[chain.source] = elements;

  NodeId upstream = chain.source;
  double cumulative = 1.0;
  for (std::size_t i = 0; i < selectivities.size(); ++i) {
    const double s = selectivities[i];
    KF_REQUIRE_AS(::kf::InvalidArgument, s > 0.0 && s <= 1.0) << "selectivity " << s << " out of (0,1]";
    // Nested thresholds: step i keeps fraction s of its input, which is the
    // prefix of the domain that survived steps 0..i-1.
    cumulative *= s;
    const auto threshold = static_cast<std::int32_t>(
        std::llround(cumulative * static_cast<double>(kDomain)));
    chain.thresholds.push_back(threshold);
    const NodeId select = chain.graph.AddOperator(
        OperatorDesc::Select(
            Expr::Lt(Expr::FieldRef(0), Expr::Lit(relational::Value::Int32(threshold))),
            "select" + std::to_string(i + 1)),
        upstream);
    chain.selects.push_back(select);
    chain.expected_rows[select] =
        static_cast<std::uint64_t>(cumulative * static_cast<double>(elements));
    upstream = select;
  }
  return chain;
}

Table MakeUniformInt32Table(std::uint64_t elements, std::uint64_t seed) {
  Table table(Schema{{"v", DataType::kInt32}});
  auto& data = table.column(0).AsInt32();
  data.reserve(elements);
  Rng rng(seed);
  for (std::uint64_t i = 0; i < elements; ++i) {
    data.push_back(static_cast<std::int32_t>(rng.UniformInt(0, kDomain - 1)));
  }
  table.SyncRowCountFromColumns();
  return table;
}

}  // namespace kf::core
