// Query execution strategies: serial, fused, fission, fused+fission.
//
// The executor runs an operator graph against the simulated device and
// produces (a) functionally correct results and (b) a simulated timeline.
//
//   kSerial       — the paper's baseline: every operator is its own staged
//                   kernel pair, executed in one stream; intermediates are
//                   materialized in device memory (and, depending on the
//                   intermediate policy or capacity pressure, round-trip
//                   through host memory over PCIe).
//   kFused        — kernel fusion (Section III): the fusion planner clusters
//                   the graph; each cluster runs as one fused staged kernel
//                   with intermediates in registers.
//   kFission      — kernel fission (Section IV): streamable operator chains
//                   are segmented, and segments pipeline over three streams
//                   so H2D copy, compute, and D2H copy overlap (Fig 13);
//                   kernels stay unfused. Results reaching the host out of
//                   order require a final CPU gather (Fig 15). Fission uses
//                   pinned host memory.
//   kFusedFission — both (Section IV-C): fission applied to fused clusters.
//
// Inputs larger than device memory are automatically processed in segments
// in every strategy (serially in kSerial/kFused — the "no fission" baseline
// of Fig 14 — and pipelined in the fission strategies).
#ifndef KF_CORE_QUERY_EXECUTOR_H_
#define KF_CORE_QUERY_EXECUTOR_H_

#include <map>
#include <optional>
#include <string>

#include "common/buffer_arena.h"
#include "common/thread_pool.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "core/calibration.h"
#include "core/fused_pipeline.h"
#include "core/fusion_planner.h"
#include "core/integrity.h"
#include "core/op_graph.h"
#include "core/operator_cost.h"
#include "sim/device_simulator.h"
#include "sim/fault_injector.h"

namespace kf::core {

enum class Strategy : std::uint8_t { kSerial, kFused, kFission, kFusedFission };
const char* ToString(Strategy strategy);

enum class IntermediatePolicy : std::uint8_t {
  // Intermediates stay in device memory; spill to host only on capacity
  // pressure ("without round trip").
  kKeepOnDevice,
  // Every intermediate crossing a cluster boundary returns to host memory
  // and is re-uploaded before its consumer ("with round trip" — what a
  // system must do when device memory cannot hold the working set).
  kRoundTrip,
};

// Fault recovery policy. The retry unit is what the paper's fission pass
// naturally provides: a resident cluster runs as one unit, every fission
// segment is its own unit, and each final sink download is a unit. A failed
// unit is re-issued on a fresh stream with exponential backoff charged to the
// simulated clock; a unit that exhausts its retries degrades its whole
// cluster to the host (Ocelot-style translated execution, see core/hetero.h)
// instead of failing the query. Functional results are computed host-side
// before the timing simulation, so recovered and degraded queries return
// byte-identical results by construction.
struct ResilienceOptions {
  int max_retries = 3;                       // attempts per failed unit
  SimTime backoff_base = 250 * kMicrosecond; // first-retry delay
  double backoff_factor = 2.0;               // delay multiplier per attempt
  bool degrade_to_host = true;  // false: throw kf::DeviceFault instead
  // Simulated-time budget for the whole query (0 = none). Exceeding it —
  // including backoff and degraded host reruns — throws kf::Timeout.
  SimTime deadline = 0.0;
};

struct ExecutorOptions {
  Strategy strategy = Strategy::kSerial;
  IntermediatePolicy intermediates = IntermediatePolicy::kKeepOnDevice;
  FusionOptions fusion;

  // Host staging memory. Fission requires pinned buffers (the paper notes
  // this is its main drawback); the serial strategies default to pinned too
  // so strategy comparisons isolate scheduling effects.
  sim::HostMemoryKind host_memory = sim::HostMemoryKind::kPinned;

  // Segments per fissioned cluster (at least stream_count to fill the
  // pipeline; raised automatically when the data exceeds device memory).
  int fission_segments = 12;
  int stream_count = 3;

  // Simulated-CTA chunking of the functional staged kernels.
  int chunk_count = 64;

  // Fraction of device memory a single resident working set may use before
  // segmentation kicks in.
  double device_memory_budget = 0.45;

  // Registry every run records into (launches, transfer bytes, engine busy
  // time, spill events, cluster counts, per-stage timings), labeled by
  // strategy. nullptr means the process-wide default registry; pass a
  // private registry for isolated measurement.
  obs::MetricsRegistry* metrics = nullptr;

  // Precomputed fusion plan for this graph (e.g. from a FusionPlanCache).
  // When set, the executor skips PlanFusion entirely; the plan must have
  // been produced for this graph shape with EffectiveFusionOptions(*this)
  // — the executor validates only that the node counts line up.
  const FusionPlan* plan = nullptr;

  // Fault injection + recovery. With an injector attached the executor
  // checks per-command outcomes after every simulated run and applies
  // `resilience`; nullptr executes the legacy always-succeeds path.
  const sim::FaultInjector* fault_injector = nullptr;
  ResilienceOptions resilience;

  // Route every cluster to the host engine (circuit-breaker open, or an
  // explicit CPU run). No device commands are issued at all.
  bool force_host = false;

  // Workspace pool for the functional staged kernels (typed SELECT-chain
  // clusters check StagedBuffers out of it, so repeated queries hit warm
  // buffers). nullptr uses the executing thread's scratch arena. The arena
  // only affects allocation behavior, never results — it is deliberately NOT
  // part of any execution-compatibility key.
  kf::BufferArena* arena = nullptr;

  // Adaptive cost-model calibration (core/calibration.h). When set, the run
  //   * replaces the fixed `fission_segments`/`stream_count` constants with
  //     choices from calibrated pipeline estimates,
  //   * places clusters on the host engine when measured ratios say the CPU
  //     wins (timing-only: functional results are always computed host-side
  //     first, so placement never changes results),
  //   * feeds the finished timeline's per-command outcomes back into the
  //     calibrator and records `calib.*` metrics.
  // nullptr keeps the exact static behavior of every previous PR. The
  // calibrator must outlive the executor call and may be shared across
  // threads (it locks internally).
  CostModelCalibrator* calibration = nullptr;

  // Data-integrity verification (core/integrity.h): checksummed transfers
  // and sampled host audits, with detected mismatches healed through the
  // retry-unit machinery. Disabled by default — the legacy trusting path.
  IntegrityOptions integrity;

  // End-to-end tracing (obs/tracer.h). When set, the run records a span tree
  // for `trace.query_id` (allocated from the tracer when 0): a root execute
  // span covering the whole simulated makespan, plan/functional spans,
  // per-cluster + per-segment + per-retry spans, and one leaf span per
  // stream command, all annotated with faults, stalls, corruption, and
  // re-executions. `trace_parent` nests the run under an enclosing span
  // (scheduler batch, multi-device shard). nullptr records nothing.
  obs::Tracer* tracer = nullptr;
  obs::TraceContext trace;
  obs::SpanId trace_parent = 0;
};

// The fusion options Run() plans with: `fusion` from the options, with
// `enabled` forced on whenever the strategy fuses or fissions (clusters are
// also the scheduling granularity) or intermediates stay on-device. Exposed
// so plan caches key on exactly what the executor would ask the planner.
FusionOptions EffectiveFusionOptions(const ExecutorOptions& options);

struct ExecutionReport {
  sim::TimelineStats timeline;
  SimTime makespan = 0.0;

  // Serialized duration sums by category (Fig 9's decomposition).
  SimTime input_output_time = 0.0;  // source H2D + sink D2H
  SimTime round_trip_time = 0.0;    // intermediate spills/round trips
  SimTime compute_time = 0.0;       // kernel solo durations
  SimTime host_gather_time = 0.0;   // CPU gather after fission

  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t peak_device_bytes = 0;
  std::size_t kernel_launches = 0;

  // Capacity-pressure evictions: resident intermediates forced back to host
  // memory because an allocation did not fit (the involuntary round trips of
  // Fig 7(a); policy-driven round trips are not counted here).
  std::size_t spill_count = 0;

  // Fusion plan shape this run executed with.
  std::size_t cluster_count = 0;
  std::size_t fused_cluster_count = 0;

  // Fault-injection outcomes (all zero/false without an injector).
  std::size_t fault_count = 0;       // injected failures observed (all runs)
  std::size_t retried_units = 0;     // retry units that were re-issued
  std::size_t retry_attempts = 0;    // total re-issues across those units
  std::size_t degraded_clusters = 0; // clusters rerun on the host engine
  bool degraded = false;             // at least one cluster degraded
  bool ran_on_host = false;          // force_host routed clusters to the CPU
  // Clusters the calibrated placement decision routed to the host engine
  // (adaptive runs only; force_host clusters are not counted here).
  std::size_t host_placed_clusters = 0;
  SimTime backoff_time = 0.0;        // simulated retry backoff charged
  // Device bytes still reserved when the run finished — must be zero; a
  // nonzero value means a fault path leaked a reservation.
  std::uint64_t leaked_device_bytes = 0;

  // Data-integrity outcomes (all zero/false unless corruption was injected
  // or IntegrityOptions enabled something).
  std::size_t corrupted_commands = 0;     // injected corruptions, all attempts
  std::size_t corruption_detected = 0;    // caught by checksum/audit
  // Corruptions that reached accepted results unnoticed. Corruption on an
  // attempt that was discarded for another reason counts in
  // `corrupted_commands` only, so detected + undetected <= corrupted.
  std::size_t corruption_undetected = 0;
  std::size_t corruption_reexecutions = 0; // retry attempts owed to detection
  std::size_t audited_clusters = 0;        // clusters host-audited this run
  bool silent_corruption = false;  // some sink bytes are silently wrong
  SimTime integrity_time = 0.0;    // checksum + audit host-engine seconds
  // Host-audit digests for every output of an audited cluster, computed by
  // the functional layer (FusedPipeline fills them for fused clusters).
  std::map<NodeId, std::uint64_t> audit_checksums;

  // Span-derived totals (tracer-attached runs only). `trace_spans` counts
  // the spans this run recorded; `trace_covered` is the root execute span's
  // simulated duration (always the full makespan); `trace_stage_seconds`
  // sums the main run's leaf command occupancy per stage category — on a
  // fault-free serial run these match the stage sums above exactly.
  std::size_t trace_spans = 0;
  SimTime trace_covered = 0.0;
  std::map<std::string, SimTime> trace_stage_seconds;

  // Per-cluster kernel-time breakdown (execution order): where the compute
  // time goes — e.g. Q1's SORT share, or the fused block's contribution.
  struct ClusterTiming {
    std::string label;
    SimTime compute = 0.0;
    std::size_t launches = 0;
    bool fused = false;
  };
  std::vector<ClusterTiming> cluster_timings;

  // Functional results, one per sink node (functional mode only).
  std::map<NodeId, relational::Table> sink_results;

  // Input-side throughput: source bytes / makespan.
  double ThroughputGBs(std::uint64_t source_bytes) const {
    return makespan > 0 ? static_cast<double>(source_bytes) / kGB / makespan : 0.0;
  }
};

class QueryExecutor {
 public:
  QueryExecutor(const sim::DeviceSimulator& device,
                OperatorCostModel cost_model = OperatorCostModel{},
                ThreadPool* pool = nullptr)
      : device_(device), cost_model_(std::move(cost_model)), pool_(pool) {}

  // Functional + timed execution. `sources` binds every source node.
  ExecutionReport Execute(const OpGraph& graph,
                          const std::map<NodeId, relational::Table>& sources,
                          const ExecutorOptions& options) const;

  // Timing-only execution for data volumes that cannot be materialized
  // (Figs 14/16 run billions of elements). `row_counts` gives the realized
  // output row count of every non-source node; source rows come from their
  // row hints.
  ExecutionReport EstimateOnly(const OpGraph& graph,
                               const std::map<NodeId, std::uint64_t>& row_counts,
                               const ExecutorOptions& options) const;

 private:
  struct NodeSizes;  // realized row counts and widths per node

  ExecutionReport Run(const OpGraph& graph,
                      const std::map<NodeId, relational::Table>* sources,
                      std::map<NodeId, std::uint64_t> row_counts,
                      const ExecutorOptions& options) const;

  const sim::DeviceSimulator& device_;
  OperatorCostModel cost_model_;
  ThreadPool* pool_;
};

}  // namespace kf::core

#endif  // KF_CORE_QUERY_EXECUTOR_H_
