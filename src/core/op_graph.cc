#include "core/op_graph.h"

#include <numeric>
#include <sstream>

#include "common/error.h"

namespace kf::core {

NodeId OpGraph::Add(OpNode node) {
  node.id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

NodeId OpGraph::AddSource(std::string name, relational::Schema schema,
                          std::uint64_t row_hint) {
  OpNode node;
  node.is_source = true;
  node.name = std::move(name);
  node.schema = std::move(schema);
  node.row_hint = row_hint;
  return Add(std::move(node));
}

NodeId OpGraph::AddOperator(relational::OperatorDesc desc, NodeId input) {
  KF_REQUIRE_AS(::kf::InvalidArgument, input < nodes_.size()) << "unknown input node " << input;
  KF_REQUIRE_AS(::kf::InvalidArgument, !desc.is_binary())
      << relational::ToString(desc.kind) << " needs two inputs";
  OpNode node;
  node.name = desc.label.empty() ? relational::ToString(desc.kind) : desc.label;
  node.schema = relational::OutputSchema(desc, nodes_[input].schema, nullptr);
  node.desc = std::move(desc);
  node.inputs = {input};
  return Add(std::move(node));
}

NodeId OpGraph::AddOperator(relational::OperatorDesc desc, NodeId left, NodeId right) {
  KF_REQUIRE_AS(::kf::InvalidArgument, left < nodes_.size()) << "unknown left input node " << left;
  KF_REQUIRE_AS(::kf::InvalidArgument, right < nodes_.size()) << "unknown right input node " << right;
  KF_REQUIRE_AS(::kf::InvalidArgument, desc.is_binary())
      << relational::ToString(desc.kind) << " takes one input";
  OpNode node;
  node.name = desc.label.empty() ? relational::ToString(desc.kind) : desc.label;
  node.schema =
      relational::OutputSchema(desc, nodes_[left].schema, &nodes_[right].schema);
  node.desc = std::move(desc);
  node.inputs = {left, right};
  return Add(std::move(node));
}

std::vector<NodeId> OpGraph::TopologicalOrder() const {
  // Inputs always precede uses by construction.
  std::vector<NodeId> order(nodes_.size());
  std::iota(order.begin(), order.end(), 0u);
  return order;
}

std::vector<NodeId> OpGraph::Consumers(NodeId id) const {
  KF_REQUIRE_AS(::kf::InvalidArgument, id < nodes_.size()) << "unknown node " << id;
  std::vector<NodeId> consumers;
  for (const OpNode& node : nodes_) {
    for (NodeId input : node.inputs) {
      if (input == id) {
        consumers.push_back(node.id);
        break;
      }
    }
  }
  return consumers;
}

std::vector<NodeId> OpGraph::Sinks() const {
  std::vector<NodeId> sinks;
  for (const OpNode& node : nodes_) {
    if (Consumers(node.id).empty()) sinks.push_back(node.id);
  }
  return sinks;
}

std::vector<NodeId> OpGraph::Sources() const {
  std::vector<NodeId> sources;
  for (const OpNode& node : nodes_) {
    if (node.is_source) sources.push_back(node.id);
  }
  return sources;
}

std::string OpGraph::ToString() const {
  std::ostringstream os;
  for (const OpNode& node : nodes_) {
    os << "#" << node.id << " " << (node.is_source ? "SOURCE " : "") << node.name;
    if (!node.inputs.empty()) {
      os << " <-";
      for (NodeId input : node.inputs) os << " #" << input;
    }
    os << " : " << node.schema.ToString() << "\n";
  }
  return os.str();
}

}  // namespace kf::core
