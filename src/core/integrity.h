// Data-integrity layer: options, table checksums, and the corruption model.
//
// Threat model (docs/integrity.md): a copy or kernel command can "succeed"
// while delivering wrong bytes — a silent bit flip injected by
// sim::FaultInjector's KF_FAULT_CORRUPT_* draws. Two detection mechanisms
// guard the data path:
//
//   * transfer verification (`verify_transfers`): every staged buffer is
//     checksummed (kf::Checksummer) before upload and re-verified after
//     download, so any corrupted H2D/D2H copy is caught at the fission
//     segment boundary or at the sink download;
//   * audit sampling (`audit_fraction`): a seeded fraction of clusters is
//     re-executed on the host engine and compared byte-for-byte, which is
//     the only way to catch a kernel that computed wrong bytes on-device.
//
// A detected mismatch makes the owning retry unit re-execute (bounded by
// `max_reexecutions`); an *undetected* corruption propagates downstream and
// flips a real bit in every reachable sink table — the executor's reports
// stay honest about what escaped (`corruption_undetected`,
// `silent_corruption`).
#ifndef KF_CORE_INTEGRITY_H_
#define KF_CORE_INTEGRITY_H_

#include <cstdint>

#include "relational/table.h"

namespace kf::core {

struct IntegrityOptions {
  // Checksum staged inputs before upload and verify after download
  // (H2D/D2H). Catches all transfer corruption; costs one host-engine
  // streaming pass per transferred buffer, overlapped with device work.
  bool verify_transfers = false;

  // Fraction of clusters (0..1) whose outputs are re-executed on the host
  // engine and compared. Catches kernel corruption, at host re-execution
  // cost; which clusters are audited is a pure function of
  // (audit_seed, injector epoch, cluster index).
  double audit_fraction = 0.0;
  std::uint64_t audit_seed = 0;

  // Re-execution budget per retry unit when the *only* problem is a
  // detected corruption (loud faults keep ResilienceOptions::max_retries).
  int max_reexecutions = 3;

  bool Enabled() const { return verify_transfers || audit_fraction > 0.0; }
};

// Checksum of a table's full contents: schema, row count, and every column's
// typed payload. Stable across runs for byte-identical tables.
std::uint64_t ChecksumTable(const relational::Table& table);

// Deterministically flips one bit somewhere in `table`'s column data (the
// silent-corruption model made real). Returns false when the table has no
// data to corrupt (zero rows or zero columns).
bool FlipRandomBit(relational::Table& table, std::uint64_t seed);

// Whether cluster `cluster` is audited this run: a pure Bernoulli draw from
// (audit_seed, run_salt, cluster) against `fraction`. The executor passes
// the injector's epoch as `run_salt`, so the audited subset varies between
// runs but is fixed for one execution (retries stay covered).
bool AuditSampled(std::uint64_t audit_seed, std::uint64_t run_salt,
                  std::size_t cluster, double fraction);

}  // namespace kf::core

#endif  // KF_CORE_INTEGRITY_H_
