#include "core/dependence.h"

#include <algorithm>

namespace kf::core {

using relational::OpKind;

const char* ToString(FusionClass c) {
  switch (c) {
    case FusionClass::kElementwise: return "elementwise";
    case FusionClass::kBroadcastProbe: return "broadcast-probe";
    case FusionClass::kReduction: return "reduction";
    case FusionClass::kBarrier: return "barrier";
  }
  return "?";
}

FusionClass Classify(OpKind kind) {
  switch (kind) {
    case OpKind::kSelect:
    case OpKind::kProject:
    case OpKind::kArith:
      return FusionClass::kElementwise;
    case OpKind::kJoin:
    case OpKind::kProduct:
      return FusionClass::kBroadcastProbe;
    case OpKind::kAggregate:
      return FusionClass::kReduction;
    case OpKind::kSort:
    case OpKind::kUnique:
    case OpKind::kUnion:
    case OpKind::kIntersect:
    case OpKind::kDifference:
      return FusionClass::kBarrier;
  }
  return FusionClass::kBarrier;
}

bool CanFuseEdge(const relational::OperatorDesc& consumer, int input_index) {
  switch (Classify(consumer.kind)) {
    case FusionClass::kElementwise:
    case FusionClass::kReduction:
      return input_index == 0;
    case FusionClass::kBroadcastProbe:
      // Only the probe (left) input streams; the build side must be
      // materialized before the fused kernel launches.
      return input_index == 0;
    case FusionClass::kBarrier:
      return false;
  }
  return false;
}

int RegisterDemand(const OpGraph& graph, const OpNode& node) {
  using relational::ExprRegisters;
  if (node.is_source) return 0;
  const relational::OperatorDesc& desc = node.desc;
  switch (desc.kind) {
    case OpKind::kSelect:
      return ExprRegisters(desc.predicate) + 1;
    case OpKind::kArith:
      return ExprRegisters(desc.arith) + 1;
    case OpKind::kProject:
      return static_cast<int>(desc.fields.size());
    case OpKind::kJoin:
    case OpKind::kProduct: {
      // Probe cursor + the fields the right side appends to the live row.
      const auto in_fields =
          static_cast<int>(graph.node(node.inputs[0]).schema.field_count());
      const auto out_fields = static_cast<int>(node.schema.field_count());
      return 2 + std::max(1, out_fields - in_fields);
    }
    case OpKind::kAggregate:
      // One accumulator per aggregate plus the group key.
      return static_cast<int>(desc.aggregates.size() + desc.group_by.size()) + 1;
    default:
      return 4;
  }
}

}  // namespace kf::core
