#include "core/fusion_planner.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "core/calibration.h"
#include "obs/metrics_registry.h"

namespace kf::core {

std::size_t FusionPlan::fused_cluster_count() const {
  return static_cast<std::size_t>(
      std::count_if(clusters.begin(), clusters.end(),
                    [](const FusionCluster& c) { return c.fused(); }));
}

std::string FusionPlan::ToString(const OpGraph& graph) const {
  std::ostringstream os;
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    const FusionCluster& cluster = clusters[c];
    os << "cluster " << c << (cluster.fused() ? " [FUSED]" : "") << " regs="
       << cluster.register_estimate << ": ";
    for (std::size_t i = 0; i < cluster.nodes.size(); ++i) {
      if (i) os << " -> ";
      os << graph.node(cluster.nodes[i]).name;
    }
    os << " (streams #" << cluster.primary_input;
    if (!cluster.build_inputs.empty()) {
      os << ", builds:";
      for (NodeId b : cluster.build_inputs) os << " #" << b;
    }
    os << ")\n";
  }
  return os.str();
}

namespace {

bool Contains(const std::vector<NodeId>& nodes, NodeId id) {
  return std::find(nodes.begin(), nodes.end(), id) != nodes.end();
}

// A reduction (AGGREGATION) folds the stream into per-chunk partials, and a
// barrier (SORT/UNIQUE/set op) is never part of a fused kernel at all;
// nothing can consume either's output inside the same fused kernel.
bool ClusterClosedBy(const OpGraph& graph, const FusionCluster& cluster, NodeId producer) {
  (void)cluster;
  const FusionClass c = Classify(graph.node(producer).desc.kind);
  return c == FusionClass::kReduction || c == FusionClass::kBarrier;
}

}  // namespace

FusionPlan PlanFusion(const OpGraph& graph, const FusionOptions& options) {
  FusionPlan plan;
  plan.cluster_of.assign(graph.node_count(), -1);

  // Feedback-driven replanning: the measured kernel-cost correction nudges
  // how aggressively clusters grow (see FusionOptions::calibration).
  const int register_budget =
      options.calibration != nullptr
          ? options.calibration->CalibratedRegisterBudget(options.register_budget,
                                                          options.base_registers)
          : options.register_budget;

  for (NodeId id : graph.TopologicalOrder()) {
    const OpNode& node = graph.node(id);
    if (node.is_source) continue;

    int target_cluster = -1;
    if (options.enabled && !node.inputs.empty() && CanFuseEdge(node.desc, 0)) {
      const NodeId primary = node.inputs[0];
      const OpNode& producer = graph.node(primary);
      int candidate = -1;
      if (!producer.is_source) {
        // Fuse into the producer's cluster (chain / pattern a,d,e,g,h).
        candidate = plan.cluster_of[primary];
      } else {
        // Producer is a source: fuse into an existing cluster streaming the
        // same source (pattern c — several SELECTs filtering one input).
        // Barrier clusters also "stream" their input but cannot host
        // additional members.
        for (std::size_t c = 0; c < plan.clusters.size(); ++c) {
          const FusionCluster& existing = plan.clusters[c];
          if (existing.primary_input != primary) continue;
          const bool has_barrier = std::any_of(
              existing.nodes.begin(), existing.nodes.end(), [&](NodeId member) {
                return Classify(graph.node(member).desc.kind) == FusionClass::kBarrier;
              });
          if (has_barrier) continue;
          candidate = static_cast<int>(c);
          break;
        }
      }
      if (candidate >= 0) {
        FusionCluster& cluster = plan.clusters[static_cast<std::size_t>(candidate)];
        const bool producer_in_cluster =
            producer.is_source ? cluster.primary_input == primary
                               : Contains(cluster.nodes, primary);
        const bool closed =
            !producer.is_source && ClusterClosedBy(graph, cluster, primary);
        // The build side of a JOIN must be materialized before this cluster
        // runs: it must come from outside the cluster, and from a cluster
        // that executes earlier (clusters run in creation order).
        bool build_ok = true;
        for (std::size_t i = 1; i < node.inputs.size(); ++i) {
          const NodeId build = node.inputs[i];
          if (Contains(cluster.nodes, build)) build_ok = false;
          if (!graph.node(build).is_source && plan.cluster_of[build] >= candidate) {
            build_ok = false;
          }
        }
        const int new_regs = cluster.register_estimate + RegisterDemand(graph, node);
        if (producer_in_cluster && !closed && build_ok &&
            new_regs <= register_budget) {
          target_cluster = candidate;
        }
      }
    }

    if (target_cluster < 0) {
      FusionCluster cluster;
      cluster.primary_input = node.inputs.empty() ? kNoNode : node.inputs[0];
      cluster.register_estimate = options.base_registers;
      plan.clusters.push_back(std::move(cluster));
      target_cluster = static_cast<int>(plan.clusters.size() - 1);
    }

    FusionCluster& cluster = plan.clusters[static_cast<std::size_t>(target_cluster)];
    cluster.nodes.push_back(id);
    cluster.register_estimate += RegisterDemand(graph, node);
    for (std::size_t i = 1; i < node.inputs.size(); ++i) {
      if (!Contains(cluster.build_inputs, node.inputs[i])) {
        cluster.build_inputs.push_back(node.inputs[i]);
      }
    }
    plan.cluster_of[id] = target_cluster;
  }

  // Cluster outputs: members consumed outside the cluster or by nobody.
  for (auto& cluster : plan.clusters) {
    for (NodeId member : cluster.nodes) {
      const std::vector<NodeId> consumers = graph.Consumers(member);
      const bool escapes =
          consumers.empty() ||
          std::any_of(consumers.begin(), consumers.end(), [&](NodeId c) {
            return !Contains(cluster.nodes, c);
          });
      if (escapes) cluster.outputs.push_back(member);
    }
    KF_REQUIRE(!cluster.outputs.empty()) << "cluster with no outputs";
  }

  obs::MetricsRegistry& m =
      options.metrics != nullptr ? *options.metrics : obs::MetricsRegistry::Default();
  m.GetCounter("planner.plans").Increment();
  m.GetCounter("planner.clusters").Increment(plan.clusters.size());
  m.GetCounter("planner.fused_clusters").Increment(plan.fused_cluster_count());
  for (const FusionCluster& cluster : plan.clusters) {
    m.GetHistogram("planner.cluster_registers")
        .Record(static_cast<double>(cluster.register_estimate));
  }
  return plan;
}

}  // namespace kf::core
