#include "core/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace kf::core {

const char* ToString(KernelClass cls) {
  switch (cls) {
    case KernelClass::kStaged: return "staged";
    case KernelClass::kFused: return "fused";
    case KernelClass::kBarrier: return "barrier";
  }
  return "?";
}

namespace {

constexpr double kTinyTime = 1e-12;  // guards ratios of degenerate durations

std::size_t DirIndex(sim::CopyDirection direction) {
  return direction == sim::CopyDirection::kHostToDevice ? 0 : 1;
}
std::size_t KindIndex(sim::HostMemoryKind kind) {
  return kind == sim::HostMemoryKind::kPageable ? 0 : 1;
}

}  // namespace

CostModelCalibrator::CostModelCalibrator(sim::DeviceSpec believed_spec,
                                         sim::PcieConfig believed_pcie,
                                         CalibrationOptions options)
    : options_(options),
      believed_pcie_(believed_pcie),
      believed_kernels_(std::move(believed_spec)) {
  epoch_snapshot_ = CorrectionSnapshot();
}

std::size_t CostModelCalibrator::SizeClass(std::uint64_t bytes) {
  if (bytes < KiB(256)) return 0;
  if (bytes < MiB(8)) return 1;
  if (bytes < MiB(128)) return 2;
  return 3;
}

void CostModelCalibrator::Update(Ewma& cell, double ratio) {
  if (cell.samples == 0) {
    cell.value = ratio;  // snap: makes re-calibration an exact fixed point
  } else {
    cell.value += options_.ewma_alpha * (ratio - cell.value);
  }
  ++cell.samples;
}

double CostModelCalibrator::Corrected(const Ewma& cell, const Ewma& fallback,
                                      int min_samples) {
  const auto enough = [min_samples](const Ewma& e) {
    return e.samples >= static_cast<std::uint64_t>(std::max(1, min_samples));
  };
  if (enough(cell)) return cell.value;
  if (enough(fallback)) return fallback.value;
  return 1.0;
}

void CostModelCalibrator::RecordError(double believed, double observed,
                                      double correction) {
  if (observed <= kTinyTime) return;
  const double estimate = believed * correction;
  const double err = std::abs(observed - estimate) / observed;
  if (error_samples_ == 0) {
    error_ewma_ = err;
  } else {
    error_ewma_ += options_.ewma_alpha * (err - error_ewma_);
  }
  ++error_samples_;
  ++observations_;
}

void CostModelCalibrator::ObserveCopy(sim::CopyDirection direction,
                                      sim::HostMemoryKind kind,
                                      std::uint64_t bytes, SimTime observed) {
  if (options_.frozen) return;
  const SimTime believed = believed_pcie_.TransferTime(bytes, kind, direction);
  if (believed <= kTinyTime || observed <= kTinyTime) return;
  const double ratio = observed / believed;
  std::lock_guard<std::mutex> lock(mutex_);
  Ewma& cell = copy_[DirIndex(direction)][KindIndex(kind)][SizeClass(bytes)];
  RecordError(believed, observed,
              Corrected(cell, copy_dir_[DirIndex(direction)], options_.min_samples));
  Update(cell, ratio);
  Update(copy_dir_[DirIndex(direction)], ratio);
}

void CostModelCalibrator::ObserveKernel(KernelClass cls,
                                        const sim::KernelProfile& profile,
                                        SimTime observed) {
  if (options_.frozen) return;
  const SimTime believed = believed_kernels_.Cost(profile).solo_duration;
  if (believed <= kTinyTime || observed <= kTinyTime) return;
  const double ratio = observed / believed;
  std::lock_guard<std::mutex> lock(mutex_);
  Ewma& cell = kernel_class_[static_cast<std::size_t>(cls)];
  RecordError(believed, observed, Corrected(cell, kernel_all_, options_.min_samples));
  Update(cell, ratio);
  Update(kernel_all_, ratio);
}

void CostModelCalibrator::ObserveStalls(std::size_t commands, std::size_t stalled) {
  if (options_.frozen) return;
  std::lock_guard<std::mutex> lock(mutex_);
  stall_commands_ += commands;
  stall_stalled_ += stalled;
}

std::vector<double> CostModelCalibrator::CorrectionSnapshot() const {
  std::vector<double> snapshot;
  snapshot.reserve(2 * 2 * kSizeClasses + 3);
  for (const auto& by_kind : copy_) {
    for (const auto& by_class : by_kind) {
      for (const Ewma& cell : by_class) snapshot.push_back(cell.value);
    }
  }
  for (const Ewma& cell : kernel_class_) snapshot.push_back(cell.value);
  return snapshot;
}

void CostModelCalibrator::EndRun() {
  obs::MetricsRegistry& metrics = options_.metrics != nullptr
                                      ? *options_.metrics
                                      : obs::MetricsRegistry::Default();
  std::lock_guard<std::mutex> lock(mutex_);
  ++runs_;
  const std::vector<double> current = CorrectionSnapshot();
  bool drifted = false;
  for (std::size_t i = 0; i < current.size(); ++i) {
    const double base = std::max(std::abs(epoch_snapshot_[i]), kTinyTime);
    if (std::abs(current[i] - epoch_snapshot_[i]) / base > options_.epoch_threshold) {
      drifted = true;
      break;
    }
  }
  if (drifted) {
    ++epoch_;
    ++epoch_bumps_;
    epoch_snapshot_ = current;
    metrics.GetCounter("calib.epoch_bumps").Increment();
  }
  metrics.GetGauge("calib.epoch").Set(static_cast<double>(epoch_));
  metrics.GetGauge("calib.error").Set(error_ewma_);
  metrics.GetGauge("calib.observations").Set(static_cast<double>(observations_));
  metrics.GetGauge("calib.stall_rate")
      .Set(stall_commands_ > 0
               ? static_cast<double>(stall_stalled_) / static_cast<double>(stall_commands_)
               : 0.0);
  metrics
      .GetGauge("calib.correction", obs::Labels{{"kind", "copy_h2d"}})
      .Set(copy_dir_[0].value);
  metrics
      .GetGauge("calib.correction", obs::Labels{{"kind", "copy_d2h"}})
      .Set(copy_dir_[1].value);
  metrics.GetGauge("calib.correction", obs::Labels{{"kind", "kernel"}})
      .Set(kernel_all_.value);
}

SimTime CostModelCalibrator::EstimateTransferTime(
    std::uint64_t bytes, sim::HostMemoryKind kind,
    sim::CopyDirection direction) const {
  const SimTime believed = believed_pcie_.TransferTime(bytes, kind, direction);
  if (options_.frozen) return believed;
  std::lock_guard<std::mutex> lock(mutex_);
  return believed * Corrected(copy_[DirIndex(direction)][KindIndex(kind)][SizeClass(bytes)],
                              copy_dir_[DirIndex(direction)], options_.min_samples);
}

SimTime CostModelCalibrator::EstimateKernelTime(
    KernelClass cls, const sim::KernelProfile& profile) const {
  const SimTime believed = believed_kernels_.Cost(profile).solo_duration;
  if (options_.frozen) return believed;
  std::lock_guard<std::mutex> lock(mutex_);
  return believed * Corrected(kernel_class_[static_cast<std::size_t>(cls)],
                              kernel_all_, options_.min_samples);
}

int CostModelCalibrator::PlanFissionSegments(const PipelineEstimate& estimate,
                                             int min_segments) const {
  static constexpr int kCandidates[] = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64};
  const sim::DeviceSpec& spec = believed_spec();
  const SimTime launch_overhead =
      static_cast<double>(std::max(1, estimate.launches)) * spec.kernel_launch_overhead;
  // Kernel work excluding the per-segment launch cost (added back per segment).
  const SimTime kernel_work =
      std::max<SimTime>(0.0, estimate.kernel_time - launch_overhead);

  int best = std::max(1, min_segments);
  SimTime best_time = -1.0;
  for (int n : kCandidates) {
    if (n < min_segments || n > options_.max_segments) continue;
    const std::uint64_t seg = static_cast<std::uint64_t>(n);
    const SimTime h =
        estimate.h2d_bytes > 0
            ? EstimateTransferTime(estimate.h2d_bytes / seg, estimate.host_memory,
                                   sim::CopyDirection::kHostToDevice)
            : 0.0;
    const SimTime d =
        estimate.d2h_bytes > 0
            ? EstimateTransferTime(estimate.d2h_bytes / seg, estimate.host_memory,
                                   sim::CopyDirection::kDeviceToHost)
            : 0.0;
    const SimTime k = kernel_work / static_cast<double>(n) + launch_overhead;
    const SimTime bottleneck = std::max({h, k, d});
    // Steady-state pipeline: the bottleneck stage back-to-back, a ramp of the
    // other stages, and per-segment sync overhead.
    const SimTime total = static_cast<double>(n) * bottleneck +
                          (h + k + d - bottleneck) +
                          static_cast<double>(n) * spec.stream_sync_overhead;
    if (best_time < 0.0 || total < best_time) {
      best_time = total;
      best = n;
    }
  }
  return best;
}

int CostModelCalibrator::ChooseStreamCount(bool d2h_present) const {
  int streams = d2h_present ? 3 : 2;
  if (StallRate() > options_.stall_stream_threshold) ++streams;
  return std::min(streams, 4);
}

int CostModelCalibrator::CalibratedRegisterBudget(int register_budget,
                                                  int base_registers) const {
  double correction;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (options_.frozen ||
        kernel_all_.samples < static_cast<std::uint64_t>(
                                  std::max(1, options_.min_samples))) {
      return register_budget;
    }
    correction = kernel_all_.value;
  }
  if (correction > 1.15) {
    return std::min(register_budget + 8,
                    sim::KernelCostModel::kMaxRegistersPerThread - 3);
  }
  if (correction < 0.85) {
    return std::max(register_budget - 8, base_registers + 4);
  }
  return register_budget;
}

bool CostModelCalibrator::NeedsExploration() const {
  if (options_.frozen) return false;  // a frozen model never learns anyway
  std::lock_guard<std::mutex> lock(mutex_);
  return kernel_all_.samples == 0 || copy_dir_[0].samples == 0;
}

std::uint64_t CostModelCalibrator::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

void CostModelCalibrator::AdvanceEpoch() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++epoch_;
  ++epoch_bumps_;
  epoch_snapshot_ = CorrectionSnapshot();
}

double CostModelCalibrator::error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return error_ewma_;
}

double CostModelCalibrator::StallRate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stall_commands_ > 0 ? static_cast<double>(stall_stalled_) /
                                   static_cast<double>(stall_commands_)
                             : 0.0;
}

std::uint64_t CostModelCalibrator::observations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return observations_;
}

double CostModelCalibrator::CopyCorrection(sim::CopyDirection direction) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return copy_dir_[DirIndex(direction)].value;
}

double CostModelCalibrator::KernelCorrection() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return kernel_all_.value;
}

}  // namespace kf::core
