// Functional execution of a fusion cluster as ONE staged kernel.
//
// This is the composed kernel the paper's fusion transformation produces
// (Fig 6 / Section III-C): a single partition stage chunks the streamed
// primary input; the compute stage pushes each element through every member
// operator back-to-back while it lives in registers (here: a Row on the
// stack), expanding through JOIN probes against pre-built hash tables and
// folding into per-chunk partial aggregates; per-chunk buffers are finally
// gathered once. No intermediate relation is materialized — that is the
// entire point of kernel fusion.
//
// The result is bit-identical to applying the member operators one after
// another with ApplyOperator (tests assert this), while touching the
// primary input exactly once.
#ifndef KF_CORE_FUSED_PIPELINE_H_
#define KF_CORE_FUSED_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <map>

#include "common/buffer_arena.h"
#include "common/thread_pool.h"
#include "core/fusion_planner.h"
#include "relational/table.h"

namespace kf::core {

struct ClusterExecution {
  // One materialized relation per cluster output node.
  std::map<NodeId, relational::Table> outputs;
  // Realized sizes, for the cost model.
  std::size_t primary_rows = 0;
  std::map<NodeId, std::size_t> output_rows;
  // Rows each member produced (cluster-internal intermediates included) —
  // these never touch memory, but the cost model charges their compute.
  std::map<NodeId, std::size_t> member_rows;
  int chunk_count = 0;
  // Per-output ChecksumTable digests, filled only when the caller asked for
  // them (the executor's audit mode compares these against downloaded bytes).
  std::map<NodeId, std::uint64_t> output_checksums;
};

// Looks up the materialized table standing for a node's output: sources'
// bound tables and previous clusters' outputs.
using TableLookup = std::function<const relational::Table&(NodeId)>;

// Executes `cluster` over `graph`. `table_of` must resolve the cluster's
// primary input and every build input. Throws kf::Error when the cluster
// contains an operator the fused pipeline cannot stream (a planner bug).
//
// A cluster that is a linear SELECT chain over a single int32 column, with
// every predicate expressible as a typed predicate kernel, bypasses the Row
// machinery entirely: it runs through the staged typed-kernel substrate over
// a pooled StagedBuffers workspace (from `arena` if given, else the calling
// thread's scratch arena) and writes the output column directly. Results,
// member row counts, and output tables are byte-identical to the generic
// path; clusters that don't match the shape (or whose predicates need the
// std::function fallback semantics of EvalExpr) take the generic path.
// With `compute_checksums` set, every output table is additionally digested
// into `output_checksums` (one streaming pass; used by audit sampling).
ClusterExecution ExecuteCluster(const OpGraph& graph, const FusionCluster& cluster,
                                const TableLookup& table_of, int chunk_count = 448,
                                ThreadPool* pool = nullptr,
                                kf::BufferArena* arena = nullptr,
                                bool compute_checksums = false);

}  // namespace kf::core

#endif  // KF_CORE_FUSED_PIPELINE_H_
