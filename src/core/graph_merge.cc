#include "core/graph_merge.h"

#include "common/error.h"

namespace kf::core {

namespace {

// Copies `graph` into `out`, unifying sources by name via `known_sources`.
std::map<NodeId, NodeId> CopyInto(const OpGraph& graph, OpGraph& out,
                                  std::map<std::string, NodeId>& known_sources) {
  std::map<NodeId, NodeId> mapping;
  for (NodeId id : graph.TopologicalOrder()) {
    const OpNode& node = graph.node(id);
    if (node.is_source) {
      auto it = known_sources.find(node.name);
      if (it != known_sources.end()) {
        const OpNode& existing = out.node(it->second);
        KF_REQUIRE(existing.schema.ToString() == node.schema.ToString())
            << "shared source '" << node.name << "' has conflicting schemas: "
            << existing.schema.ToString() << " vs " << node.schema.ToString();
        mapping[id] = it->second;
      } else {
        const NodeId merged = out.AddSource(node.name, node.schema, node.row_hint);
        known_sources.emplace(node.name, merged);
        mapping[id] = merged;
      }
      continue;
    }
    if (node.inputs.size() == 1) {
      mapping[id] = out.AddOperator(node.desc, mapping.at(node.inputs[0]));
    } else {
      mapping[id] = out.AddOperator(node.desc, mapping.at(node.inputs[0]),
                                    mapping.at(node.inputs[1]));
    }
  }
  return mapping;
}

}  // namespace

MergeResult MergeGraphs(const OpGraph& first, const OpGraph& second) {
  MergeResult result;
  std::map<std::string, NodeId> known_sources;
  result.first_mapping = CopyInto(first, result.graph, known_sources);
  result.second_mapping = CopyInto(second, result.graph, known_sources);
  return result;
}

}  // namespace kf::core
