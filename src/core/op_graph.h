// Query plans as operator DAGs.
//
// An `OpGraph` is the unit the fusion/fission compiler works on: source
// nodes stand for input relations (bound to concrete tables at execution
// time), operator nodes reference their input nodes, and schemas are
// propagated and checked at construction. The graphs for the paper's Fig 2
// patterns and the TPC-H Q1/Q21 plans (Fig 17) are built with this API.
#ifndef KF_CORE_OP_GRAPH_H_
#define KF_CORE_OP_GRAPH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "relational/operators.h"

namespace kf::core {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xffffffffu;

struct OpNode {
  NodeId id = kNoNode;
  bool is_source = false;
  std::string name;
  relational::OperatorDesc desc;   // operators only
  std::vector<NodeId> inputs;      // empty for sources; 1 or 2 otherwise
  relational::Schema schema;       // output schema (sources: bound schema)
  // Expected input row count for sources (used by cost estimation before
  // functional execution realizes actual sizes).
  std::uint64_t row_hint = 0;
};

class OpGraph {
 public:
  // Adds an input relation with its schema and an expected row count.
  NodeId AddSource(std::string name, relational::Schema schema,
                   std::uint64_t row_hint = 0);

  // Adds a unary operator over `input`.
  NodeId AddOperator(relational::OperatorDesc desc, NodeId input);

  // Adds a binary operator. For JOIN/PRODUCT, `left` is the probe side and
  // `right` the build side.
  NodeId AddOperator(relational::OperatorDesc desc, NodeId left, NodeId right);

  const OpNode& node(NodeId id) const { return nodes_.at(id); }
  std::size_t node_count() const { return nodes_.size(); }

  // Node ids in a valid topological order (insertion order is one, since
  // inputs must exist before use; returned explicitly for clarity).
  std::vector<NodeId> TopologicalOrder() const;

  // Ids of nodes that consume `id`'s output.
  std::vector<NodeId> Consumers(NodeId id) const;

  // Nodes with no consumers (query results).
  std::vector<NodeId> Sinks() const;

  // All source nodes, in insertion order.
  std::vector<NodeId> Sources() const;

  std::string ToString() const;

 private:
  NodeId Add(OpNode node);

  std::vector<OpNode> nodes_;
};

}  // namespace kf::core

#endif  // KF_CORE_OP_GRAPH_H_
