// Adaptive cost-model calibration (feedback-driven replanning).
//
// Every planning decision in this codebase — fission segment counts, stream
// counts, CPU/GPU placement, the fusion planner's register budget — is made
// against an *analytic* cost model seeded from a DeviceSpec/PcieConfig. On a
// real deployment that seed is never exactly right: PCIe links share a root
// complex, ECC steals bandwidth, driver versions move launch overheads. The
// `CostModelCalibrator` closes the loop: the executor feeds it per-command
// outcomes from the simulated `sim::Timeline` after every run (observed copy
// time per direction × host-memory kind × size class, kernel time per stage
// category, stall rates), and the calibrator maintains EWMA correction
// ratios (observed / believed) that overlay the believed model:
//
//     estimate = believed_model(bytes or profile) × correction
//
// Decisions made from those calibrated estimates converge to the true device
// even when the believed spec is 2× optimistic or pessimistic (see
// bench_adaptive and docs/adaptive.md).
//
// Metamorphic properties (tests/core/calibration_test.cc):
//   * monotonicity — observing higher bandwidth (smaller times) never raises
//     a transfer estimate, because the correction is a multiplier on a
//     monotone believed model;
//   * idempotence — the first sample of a class *snaps* the correction to
//     the observed ratio, and the EWMA update is `c += α·(r − c)`, so
//     re-feeding an identical timeline is an exact fixed point;
//   * convergence — on a stationary device the mean relative estimate error
//     is non-increasing run over run and reaches ~0.
//
// Epochs: corrections drift as observations arrive. When any correction has
// moved by more than `epoch_threshold` (relative) since the last epoch, the
// epoch counter bumps. Plan caches version their entries by this epoch
// (`FusionPlanCache::GetOrPlan(..., version)`), so plans costed under stale
// corrections are re-planned instead of served stale.
//
// Thread safety: all methods are safe to call concurrently (one mutex; every
// path here is cold compared to execution itself).
#ifndef KF_CORE_CALIBRATION_H_
#define KF_CORE_CALIBRATION_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/units.h"
#include "obs/metrics_registry.h"
#include "sim/device_spec.h"
#include "sim/kernel_cost_model.h"
#include "sim/pcie_model.h"

namespace kf::core {

// Stage category a kernel observation is keyed by: fused clusters, unfused
// staged kernels, and barrier operators (sorts) have different believed-model
// error profiles, so they calibrate independently (with a shared all-kernel
// correction as fallback until a category has samples).
enum class KernelClass : std::uint8_t { kStaged = 0, kFused = 1, kBarrier = 2 };
const char* ToString(KernelClass cls);

struct CalibrationOptions {
  // EWMA weight of each new observation after the first (the first sample of
  // a class snaps the correction — see header comment).
  double ewma_alpha = 0.35;

  // Relative correction drift that bumps the calibration epoch (checked once
  // per run in EndRun()).
  double epoch_threshold = 0.10;

  // Samples a (direction × kind × size-class) or kernel-category cell needs
  // before its correction is trusted; cells below fall back to the
  // direction-global / all-kernel correction, then to 1.0.
  int min_samples = 1;

  // Frozen calibrators never learn: estimates come from the raw believed
  // model. This is the "uncalibrated executor" arm of bench_adaptive — the
  // adaptive decision logic runs, but against the (miscalibrated) static
  // model, exactly like a deployment that trusts its seed constants.
  bool frozen = false;

  // Stall rate above which the executor provisions one extra stream.
  double stall_stream_threshold = 0.05;

  // Upper bound for adaptively chosen fission segment counts.
  int max_segments = 64;

  // Registry EndRun() records `calib.*` gauges/counters into; nullptr means
  // the process-wide default registry.
  obs::MetricsRegistry* metrics = nullptr;
};

// Believed per-cluster pipeline shape, used by the adaptive fission planner.
// All quantities describe the WHOLE cluster at one segment.
struct PipelineEstimate {
  std::uint64_t h2d_bytes = 0;  // streamed input upload
  std::uint64_t d2h_bytes = 0;  // host-bound output download (0: stays resident)
  SimTime kernel_time = 0.0;    // calibrated kernel time, single segment
  int launches = 1;             // kernel launches per segment
  sim::HostMemoryKind host_memory = sim::HostMemoryKind::kPinned;
};

class CostModelCalibrator {
 public:
  static constexpr std::size_t kSizeClasses = 4;

  explicit CostModelCalibrator(
      sim::DeviceSpec believed_spec = sim::DeviceSpec::TeslaC2070(),
      sim::PcieConfig believed_pcie = sim::PcieConfig{},
      CalibrationOptions options = CalibrationOptions{});

  CostModelCalibrator(const CostModelCalibrator&) = delete;
  CostModelCalibrator& operator=(const CostModelCalibrator&) = delete;

  // --- Observation feed (executor → calibrator, after each run). ----------
  // All no-ops when frozen.
  void ObserveCopy(sim::CopyDirection direction, sim::HostMemoryKind kind,
                   std::uint64_t bytes, SimTime observed);
  void ObserveKernel(KernelClass cls, const sim::KernelProfile& profile,
                     SimTime observed);
  void ObserveStalls(std::size_t commands, std::size_t stalled);
  // Once per finished run: checks correction drift against the last epoch
  // snapshot (bumping the epoch on > epoch_threshold movement) and records
  // the `calib.*` metrics.
  void EndRun();

  // --- Calibrated estimates (believed model × learned correction). --------
  SimTime EstimateTransferTime(std::uint64_t bytes, sim::HostMemoryKind kind,
                               sim::CopyDirection direction) const;
  SimTime EstimateKernelTime(KernelClass cls,
                             const sim::KernelProfile& profile) const;

  // --- Adaptive decisions. -------------------------------------------------
  // Segment count minimizing the believed+corrected pipeline makespan
  //   T(N) = N·max(h,k,d) + ramp + N·sync
  // over a fixed candidate set, never below `min_segments` (the capacity
  // floor). Returns 1 when segmentation does not pay (per-segment PCIe
  // latency and launch overhead exceed the overlap win) — the executor then
  // runs the cluster resident, which is the replanning half of the loop.
  int PlanFissionSegments(const PipelineEstimate& estimate,
                          int min_segments) const;

  // 3 streams when a D2H leg exists (H2D/compute/D2H pipeline), 2 otherwise,
  // plus one when the measured stall rate exceeds the threshold (a stalled
  // stream strands its queued segments; a spare keeps the engines fed).
  int ChooseStreamCount(bool d2h_present) const;

  // Register budget for the fusion planner: kernels measuring more expensive
  // than believed (correction > 1.15) make intermediate traffic dearer, so
  // fuse more aggressively (+8, capped below the Fermi spill limit); kernels
  // measuring cheaper (< 0.85) relax the pressure (−8).
  int CalibratedRegisterBudget(int register_budget, int base_registers) const;

  // True until the calibrator has at least one kernel and one H2D sample:
  // the executor keeps clusters on the device while this holds, so a
  // pessimistically believed device cannot starve itself of the very
  // observations that would correct it.
  bool NeedsExploration() const;

  // --- Introspection. ------------------------------------------------------
  // Monotone counter versioning cached plans; starts at 1.
  std::uint64_t epoch() const;
  // Manual epoch bump (operational plan-cache flush; also used by tests).
  void AdvanceEpoch();
  // EWMA of relative estimate error |observed − estimate| / observed across
  // all observations, measured *before* each correction update. ~0 once
  // converged; large when the believed spec is badly wrong.
  double error() const;
  double StallRate() const;
  std::uint64_t observations() const;
  // Direction-global copy correction and all-kernel correction (tests).
  double CopyCorrection(sim::CopyDirection direction) const;
  double KernelCorrection() const;

  bool frozen() const { return options_.frozen; }
  const sim::DeviceSpec& believed_spec() const { return believed_kernels_.spec(); }
  const sim::PcieConfig& believed_pcie() const { return believed_pcie_.config(); }
  const CalibrationOptions& options() const { return options_; }

  // Size-class bucketing of transfer bytes (<256 KiB, <8 MiB, <128 MiB, rest):
  // small transfers are latency-dominated, large ones bandwidth-dominated,
  // and the pinned-degradation regime only shows past hundreds of MiB, so
  // their observed/believed ratios differ.
  static std::size_t SizeClass(std::uint64_t bytes);

 private:
  // One EWMA correction cell. `value` is observed/believed; the first sample
  // snaps (idempotence — see header comment).
  struct Ewma {
    double value = 1.0;
    std::uint64_t samples = 0;
  };
  void Update(Ewma& cell, double ratio);
  // Correction for a cell with fallback: cell → fallback → 1.0.
  static double Corrected(const Ewma& cell, const Ewma& fallback,
                          int min_samples);
  void RecordError(double believed, double observed, double correction);
  std::vector<double> CorrectionSnapshot() const;  // all cells, fixed order

  const CalibrationOptions options_;
  const sim::PcieModel believed_pcie_;
  const sim::KernelCostModel believed_kernels_;

  mutable std::mutex mutex_;
  // [direction][kind][size class] and direction-global fallbacks.
  Ewma copy_[2][2][kSizeClasses];
  Ewma copy_dir_[2];
  // [KernelClass] and all-kernel fallback.
  Ewma kernel_class_[3];
  Ewma kernel_all_;

  std::uint64_t epoch_ = 1;
  std::vector<double> epoch_snapshot_;
  std::uint64_t epoch_bumps_ = 0;

  double error_ewma_ = 0.0;
  std::uint64_t error_samples_ = 0;
  std::uint64_t observations_ = 0;
  std::uint64_t stall_commands_ = 0;
  std::uint64_t stall_stalled_ = 0;
  std::uint64_t runs_ = 0;
};

}  // namespace kf::core

#endif  // KF_CORE_CALIBRATION_H_
