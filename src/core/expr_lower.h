// Lowering relational expressions to the mini kernel IR.
//
// This is the compiler path the paper sketches in Section III-C: the fused
// kernel's compute stage is generated from the operator dependence graph,
// and classic optimizations then run over the enlarged body. Lowering a
// SELECT predicate produces the filter stage of Fig 3; lowering a chain
// produces the fused filter of Fig 6. The Table III benchmark counts
// instructions over these functions at -O0 and -O3.
#ifndef KF_CORE_EXPR_LOWER_H_
#define KF_CORE_EXPR_LOWER_H_

#include <span>
#include <string>

#include "ir/function.h"
#include "relational/expr.h"

namespace kf::core {

// Lowers one SELECT filter body: load the referenced fields, evaluate
// `predicate`, and store the element's fields to the output on success.
// `materialize_constants` mimics -O0 constant handling.
ir::Function LowerSelectFilter(const std::string& name,
                               const relational::Expr& predicate,
                               bool materialize_constants = true);

// Lowers the *unoptimized fusion* of a chain of SELECT filters: nested
// guard triangles, one per predicate, with intermediates carried in
// registers (what source-level fusion produces before the optimizer runs).
ir::Function LowerFusedSelectFilters(const std::string& name,
                                     std::span<const relational::Expr> predicates,
                                     bool materialize_constants = true);

// Lowers an ARITH map body: evaluate `expr` over the fields and store the
// result (the compute stage of pattern (h)).
ir::Function LowerArithMap(const std::string& name, const relational::Expr& expr,
                           bool materialize_constants = true);

}  // namespace kf::core

#endif  // KF_CORE_EXPR_LOWER_H_
