// The kernel-fusion planner (paper Section III-C, "Automating Fusion").
//
// Discovers feasible combinations of kernels to fuse via dependence analysis
// and greedily grows fusion clusters in topological order, guarded by a
// register-pressure cost function: each operator added to a cluster
// increases the per-thread live state of the fused kernel, and past the
// budget the planner starts a new cluster instead (fusing too much causes
// spills — the paper's stated reason to be judicious).
//
// A cluster is a connected set of operators executed as ONE fused staged
// kernel: a single partition stage, the member operators' compute stages
// interleaved in topological order with intermediates in registers, and a
// single gather stage. A cluster streams exactly one input (its primary);
// JOIN/PRODUCT build sides are materialized cluster-external inputs.
#ifndef KF_CORE_FUSION_PLANNER_H_
#define KF_CORE_FUSION_PLANNER_H_

#include <string>
#include <vector>

#include "core/dependence.h"
#include "core/op_graph.h"

namespace kf::obs {
class MetricsRegistry;
}

namespace kf::core {

class CostModelCalibrator;

struct FusionCluster {
  std::vector<NodeId> nodes;        // member operators, topological order
  NodeId primary_input = kNoNode;   // node whose output is streamed
  std::vector<NodeId> build_inputs; // materialized side inputs (JOIN builds)
  std::vector<NodeId> outputs;      // members whose results leave the cluster
  int register_estimate = 0;        // per-thread registers of the fused kernel

  bool fused() const { return nodes.size() > 1; }
};

struct FusionPlan {
  std::vector<FusionCluster> clusters;  // topological cluster order
  std::vector<int> cluster_of;          // node id -> cluster index (-1: source)

  std::size_t fused_cluster_count() const;
  std::string ToString(const OpGraph& graph) const;
};

struct FusionOptions {
  bool enabled = true;
  // Per-thread register budget for a fused kernel. Fermi allows 63; leaving
  // headroom below the hardware cap avoids occupancy collapse.
  int register_budget = 48;
  // Baseline register cost of the staged-kernel skeleton (partition
  // cursors, buffer indices).
  int base_registers = 10;
  // Registry that PlanFusion records planner counters into; nullptr means
  // the process-wide default registry.
  obs::MetricsRegistry* metrics = nullptr;
  // Feedback-driven replanning hook (core/calibration.h): when set, the
  // effective register budget is nudged by the measured kernel-cost
  // correction (kernels dearer than believed ⇒ fuse more, saving traffic).
  // Deliberately NOT rendered into FusionOptionsKey — plan caches version
  // entries by the calibrator's epoch instead (see server/plan_cache.h).
  const CostModelCalibrator* calibration = nullptr;
};

FusionPlan PlanFusion(const OpGraph& graph, const FusionOptions& options = {});

}  // namespace kf::core

#endif  // KF_CORE_FUSION_PLANNER_H_
