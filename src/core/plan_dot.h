// Graphviz DOT export of operator graphs and fusion plans.
//
// Renders what the paper's Fig 17 draws by hand: the query plan, with the
// fusion planner's clusters as colored subgraph boxes (fused blocks shaded)
// — `dot -Tpdf plan.dot -o plan.pdf` gives the picture.
#ifndef KF_CORE_PLAN_DOT_H_
#define KF_CORE_PLAN_DOT_H_

#include <string>

#include "core/fusion_planner.h"
#include "core/op_graph.h"

namespace kf::core {

// Just the operator DAG.
std::string ToDot(const OpGraph& graph);

// The DAG with fusion clusters drawn as subgraph boxes.
std::string ToDot(const OpGraph& graph, const FusionPlan& plan);

}  // namespace kf::core

#endif  // KF_CORE_PLAN_DOT_H_
