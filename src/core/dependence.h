// Dependence classification for kernel fusion (paper Section III-C).
//
// The paper distinguishes two kinds of inter-kernel dependence:
//   (i)  each output element of the consumer depends on one element of the
//        producer's output — the dependence decomposes to scalars and the
//        kernels fuse directly (SELECT chains, ARITH, PROJECT);
//   (ii) the consumer needs the *entire* producer output first. Domain
//        knowledge splits this class: JOIN-after-JOIN fuses (the probe side
//        streams while the build side is materialized), while SORT and
//        UNIQUE are true barriers ("SORT and UNIQUE cannot be fused with any
//        other operators").
#ifndef KF_CORE_DEPENDENCE_H_
#define KF_CORE_DEPENDENCE_H_

#include "core/op_graph.h"
#include "relational/operators.h"

namespace kf::core {

enum class FusionClass : std::uint8_t {
  // One output element per input element (possibly dropped): SELECT,
  // PROJECT, ARITH. Fuses on its single input.
  kElementwise,
  // Streams its probe (left) input elementwise once the build (right) input
  // is materialized: JOIN, PRODUCT. Fuses along the left edge only.
  kBroadcastProbe,
  // Consumes its input elementwise into per-chunk partial results combined
  // at the gather: AGGREGATION. Fuses as the *last* stage of a chain.
  kReduction,
  // Requires the complete input and global data movement: SORT, UNIQUE, and
  // the set operators. Never fuses.
  kBarrier,
};

const char* ToString(FusionClass c);

FusionClass Classify(relational::OpKind kind);

// True when `consumer` may be fused with the producer of its `input_index`-th
// input (0 = left/probe). Sources always allow fusion of their consumers
// (the fused kernel reads the source directly).
bool CanFuseEdge(const relational::OperatorDesc& consumer, int input_index);

// Rough per-thread register demand an operator adds to a fused kernel; the
// planner sums these against the device's register budget (the paper's
// register-pressure cost function). JOIN/PRODUCT charge only the fields they
// *append* to the streamed row (the probe row is already live).
int RegisterDemand(const OpGraph& graph, const OpNode& node);

}  // namespace kf::core

#endif  // KF_CORE_DEPENDENCE_H_
