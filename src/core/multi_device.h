// Sharded query execution across a simulated device group.
//
// The paper's fission pass segments a streamable operator chain so copy and
// compute overlap on one card; the same segmentation is the unit for sharding
// the chain across *several* cards. `MultiDeviceExecutor` row-slices the
// query's shard source (the relation every sink's probe-side chain reads),
// broadcasts every other source, runs the existing `QueryExecutor` per device
// — against `DeviceGroup::ContendedView`s so concurrent PCIe traffic is
// derated — and concatenates sink results in device order. Because the
// shardable operator set (SELECT, ARITH, probe-side JOIN) is row-wise and
// order-preserving, the concatenation is byte-identical to a single-device
// run over the full input (see docs/multi_device.md).
#ifndef KF_CORE_MULTI_DEVICE_H_
#define KF_CORE_MULTI_DEVICE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/query_executor.h"
#include "sim/device_group.h"

namespace kf::core {

// How rows of the shard source are divided among devices.
enum class ShardSplit : std::uint8_t {
  // Equal row counts (remainder rows go to the first shards).
  kStatic,
  // Rows proportional to each device's sustained memory bandwidth — the
  // throughput a streaming fission pipeline is bound by. Identical to
  // kStatic for homogeneous groups.
  kBytesProportional,
};
const char* ToString(ShardSplit split);

struct MultiDeviceOptions {
  // Per-shard executor configuration (strategy, fission segments, streams,
  // resilience...). `base.fault_injector` applies to every shard unless a
  // per-device injector overrides it below.
  ExecutorOptions base;

  ShardSplit split = ShardSplit::kStatic;

  // Optional per-device fault injectors, indexed by *group* device index
  // (shorter vectors / nullptr entries fall back to `base.fault_injector`).
  // This is how per-device fault domains are modeled: device k's shards see
  // only device k's faults.
  std::vector<const sim::FaultInjector*> per_device_injectors;

  // Optional per-device calibrators (core/calibration.h), indexed by *group*
  // device index (shorter vectors / nullptr entries fall back to
  // `base.calibration`). Each device learns corrections from its own shards
  // only, so one drifting card does not skew its siblings' models.
  std::vector<CostModelCalibrator*> per_device_calibrations;

  // Group device indices to shard across; empty means every device. Order
  // defines shard order (results concatenate in this order).
  std::vector<int> devices;

  // On a group-wide capacity failure (a shard cannot fit even after the
  // executor's own segmentation/spill handling), rerun the whole query on
  // the host engine instead of failing. Mirrors the PR 4 degrade path.
  bool allow_host_fallback = true;
};

struct ShardReport {
  int device = 0;           // group device index
  std::uint64_t rows = 0;   // shard-source rows assigned to this device
  ExecutionReport report;   // the per-shard single-device report
};

struct MultiDeviceReport {
  // Group-level view: `combined.makespan` is the slowest shard plus the
  // cross-device gather; byte/launch/fault counters are summed across
  // shards; `combined.sink_results` holds the concatenated tables.
  ExecutionReport combined;
  std::vector<ShardReport> shards;

  int devices_used = 1;            // shards that received rows
  bool sharded = false;            // false: single-device or host fallback
  bool host_fallback = false;      // group-wide OOM rerouted to the host
  double transfer_derating = 1.0;  // PCIe derating applied to every shard
  SimTime gather_time = 0.0;       // host-side concatenation of shard results
};

class MultiDeviceExecutor {
 public:
  explicit MultiDeviceExecutor(const sim::DeviceGroup& group,
                               OperatorCostModel cost_model = OperatorCostModel{},
                               ThreadPool* pool = nullptr)
      : group_(group), cost_model_(std::move(cost_model)), pool_(pool) {}

  // True when the graph has the shape sharding preserves: every sink's
  // probe-side (inputs[0]) chain reaches one shared source through
  // SELECT/ARITH/JOIN nodes only, every JOIN's build side is a source, and
  // the shard source feeds no build side. Everything else (sorts,
  // aggregations, set operators, multiple fan-in sources) runs unsharded on
  // a single device.
  static bool Shardable(const OpGraph& graph);

  // Functional + timed execution. Falls back to one device (the first
  // active one) when the graph is not shardable or only one device is
  // active; that path is byte- and timing-identical to `QueryExecutor`.
  MultiDeviceReport Execute(const OpGraph& graph,
                            const std::map<NodeId, relational::Table>& sources,
                            const MultiDeviceOptions& options) const;

  // Timing-only execution for data volumes that cannot be materialized.
  // `row_counts` follows `QueryExecutor::EstimateOnly` semantics for the
  // full (unsharded) query; per-shard counts are scaled by shard fraction.
  MultiDeviceReport EstimateOnly(const OpGraph& graph,
                                 const std::map<NodeId, std::uint64_t>& row_counts,
                                 const MultiDeviceOptions& options) const;

  const sim::DeviceGroup& group() const { return group_; }

 private:
  // Shared engine behind Execute/EstimateOnly (mirrors QueryExecutor::Run:
  // `sources` non-null selects functional mode).
  MultiDeviceReport Run(const OpGraph& graph,
                        const std::map<NodeId, relational::Table>* sources,
                        const std::map<NodeId, std::uint64_t>& row_counts,
                        const MultiDeviceOptions& options) const;

  std::vector<int> ActiveDevices(const MultiDeviceOptions& options) const;
  const sim::FaultInjector* InjectorFor(int device,
                                        const MultiDeviceOptions& options) const;
  CostModelCalibrator* CalibrationFor(int device,
                                      const MultiDeviceOptions& options) const;

  // Shard-source row ranges: `bounds[k]..bounds[k+1]` is shard k. Always
  // monotone and covering [0, total_rows].
  std::vector<std::uint64_t> ShardBounds(std::uint64_t total_rows,
                                         const std::vector<int>& devices,
                                         ShardSplit split) const;

  const sim::DeviceGroup& group_;
  OperatorCostModel cost_model_;
  ThreadPool* pool_;
};

}  // namespace kf::core

#endif  // KF_CORE_MULTI_DEVICE_H_
