#include "cpu/cpu_select.h"

#include <algorithm>

#include "common/error.h"
#include "common/prefix_sum.h"

namespace kf::cpu {

std::vector<std::int32_t> CpuSelect(std::span<const std::int32_t> input,
                                    const Int32Predicate& predicate, ThreadPool* pool) {
  const std::size_t n = input.size();
  if (pool == nullptr || pool->thread_count() <= 1 || n < 4096) {
    std::vector<std::int32_t> output;
    output.reserve(n / 4);
    std::copy_if(input.begin(), input.end(), std::back_inserter(output), predicate);
    return output;
  }

  const std::size_t blocks = pool->thread_count() * 4;
  const std::size_t block_size = (n + blocks - 1) / blocks;
  const std::size_t block_count = (n + block_size - 1) / block_size;

  // Pass 1: per-block match counts. Blocks are claimed from the pool's
  // atomic counter — no task boxing, no per-block allocation.
  std::vector<std::uint64_t> counts(block_count, 0);
  pool->ParallelForEach(block_count, [&](std::size_t b) {
    const std::size_t begin = b * block_size;
    const std::size_t end = std::min(n, begin + block_size);
    std::uint64_t count = 0;
    for (std::size_t i = begin; i < end; ++i) {
      if (predicate(input[i])) ++count;
    }
    counts[b] = count;
  });

  // Scan, then pass 2: positioned writes.
  const std::vector<std::uint64_t> offsets = ExclusiveScanWithTotal(counts);
  std::vector<std::int32_t> output(offsets.back());
  pool->ParallelForEach(block_count, [&](std::size_t b) {
    const std::size_t begin = b * block_size;
    const std::size_t end = std::min(n, begin + block_size);
    std::size_t pos = offsets[b];
    for (std::size_t i = begin; i < end; ++i) {
      if (predicate(input[i])) output[pos++] = input[i];
    }
  });
  return output;
}

double CpuSelectModel::ThroughputGBs(std::uint64_t elements, double selectivity) const {
  KF_REQUIRE(selectivity >= 0.0 && selectivity <= 1.0)
      << "selectivity " << selectivity << " out of [0,1]";
  const auto& table = config_.throughput_gbs;
  KF_REQUIRE(!table.empty()) << "empty calibration table";
  double base = table.back().second;
  if (selectivity <= table.front().first) {
    base = table.front().second;
  } else {
    for (std::size_t i = 1; i < table.size(); ++i) {
      if (selectivity <= table[i].first) {
        const auto [x0, y0] = table[i - 1];
        const auto [x1, y1] = table[i];
        base = y0 + (y1 - y0) * (selectivity - x0) / (x1 - x0);
        break;
      }
    }
  }
  // Thread scaling relative to the calibration point (sub-linear: the
  // comparator is memory-bound beyond ~half the sockets' cores).
  if (config_.threads != config_.calibration_threads) {
    const double ratio = static_cast<double>(config_.threads) /
                         static_cast<double>(config_.calibration_threads);
    base *= std::min(1.5, std::max(0.1, 0.4 + 0.6 * ratio));
  }
  // Small inputs pay threading/fork-join overhead.
  if (elements < config_.ramp_elements) {
    const double f = static_cast<double>(elements) /
                     static_cast<double>(config_.ramp_elements);
    base *= 0.25 + 0.75 * f;
  }
  return base;
}

SimTime CpuSelectModel::SelectTime(std::uint64_t elements, double selectivity) const {
  const double bytes = static_cast<double>(elements) * 4.0;
  return bytes / (ThroughputGBs(elements, selectivity) * kGB);
}

}  // namespace kf::cpu
