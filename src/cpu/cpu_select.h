// Multithreaded CPU comparator for the SELECT operator (paper Fig 4a).
//
// Two faces, mirroring the GPU side of the repository:
//   * `CpuSelect` — a real parallel implementation (count / scan / write,
//     the standard shared-memory compaction) used for correctness tests and
//     wall-clock microbenchmarks on this machine;
//   * `CpuSelectModel` — a throughput model of the paper's comparator (dual
//     quad-core Xeon E5520, 16 threads), calibrated against Figure 4(a):
//     roughly 7.5 GB/s at 10% selectivity falling to ~1.8 GB/s at 90%,
//     2.9x-8.8x below the device. The simulated experiments compare the
//     device model against this model, not against this container's CPU.
#ifndef KF_CPU_CPU_SELECT_H_
#define KF_CPU_CPU_SELECT_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "common/units.h"

namespace kf::cpu {

using Int32Predicate = std::function<bool(std::int32_t)>;

// Parallel filter with exact input order preserved. `thread_count == 0`
// uses the pool's width.
std::vector<std::int32_t> CpuSelect(std::span<const std::int32_t> input,
                                    const Int32Predicate& predicate,
                                    ThreadPool* pool = nullptr);

// Throughput model of the paper's 16-thread Xeon E5520 comparator.
class CpuSelectModel {
 public:
  struct Config {
    int threads = 16;
    int calibration_threads = 16;  // thread count the table below reflects
    // Piecewise-linear calibration: selectivity -> input throughput (GB/s).
    // Interpolated; endpoints clamp.
    std::vector<std::pair<double, double>> throughput_gbs = {
        {0.0, 9.0}, {0.10, 7.5}, {0.25, 4.3}, {0.50, 2.3}, {0.75, 1.95},
        {0.90, 1.75}, {1.0, 1.6}};
    // Elements below which threading overhead dominates (throughput ramps
    // linearly from ~1/4 of peak).
    std::uint64_t ramp_elements = 1u << 20;
  };

  CpuSelectModel() = default;
  explicit CpuSelectModel(Config config) : config_(std::move(config)) {}

  // Input-side throughput in GB/s for selecting `selectivity` of `elements`
  // 32-bit integers.
  double ThroughputGBs(std::uint64_t elements, double selectivity) const;

  // Wall time for the same operation.
  SimTime SelectTime(std::uint64_t elements, double selectivity) const;

 private:
  Config config_;
};

}  // namespace kf::cpu

#endif  // KF_CPU_CPU_SELECT_H_
