// Fast 64-bit streaming checksum for data-integrity verification.
//
// The integrity layer (docs/integrity.md) checksums every staged buffer
// before upload and verifies it after download, so the hash must be cheap
// enough to run at memory bandwidth and stable across chunked feeding: a
// buffer hashed in one Update() call and the same buffer hashed byte-by-byte
// produce the same digest (the hasher buffers a partial 8-byte tail
// internally). The construction is a splitmix64-style multiply-xorshift
// chain over little-endian 64-bit words with the total length folded into
// the final mix — not cryptographic, but a single flipped bit anywhere in
// the input always changes the digest, which is the property transfer
// verification needs.
#ifndef KF_COMMON_CHECKSUM_H_
#define KF_COMMON_CHECKSUM_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace kf {

class Checksummer {
 public:
  // Feeds `n` bytes. Chunking is irrelevant: any split of the same byte
  // sequence across Update() calls yields the same Digest().
  void Update(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    length_ += n;
    if (tail_len_ > 0) {
      while (n > 0 && tail_len_ < kWord) {
        tail_[tail_len_++] = *p++;
        --n;
      }
      if (tail_len_ == kWord) {
        Absorb(Load(tail_.data()));
        tail_len_ = 0;
      }
    }
    while (n >= kWord) {
      Absorb(Load(p));
      p += kWord;
      n -= kWord;
    }
    while (n > 0) {
      tail_[tail_len_++] = *p++;
      --n;
    }
  }

  // Digest of everything fed so far. Does not disturb the stream: more
  // Update() calls may follow and extend the same hash.
  std::uint64_t Digest() const {
    std::uint64_t h = state_;
    if (tail_len_ > 0) {
      std::uint64_t word = 0;
      for (std::size_t i = 0; i < tail_len_; ++i) {
        word |= static_cast<std::uint64_t>(tail_[i]) << (8 * i);
      }
      h = Mix(h ^ word * kMul);
    }
    return Mix(h ^ length_);
  }

  void Reset() {
    state_ = kInit;
    length_ = 0;
    tail_len_ = 0;
  }

  // One-shot convenience.
  static std::uint64_t Hash(const void* data, std::size_t n) {
    Checksummer c;
    c.Update(data, n);
    return c.Digest();
  }

 private:
  static constexpr std::size_t kWord = 8;
  static constexpr std::uint64_t kInit = 0x9e3779b97f4a7c15ULL;
  static constexpr std::uint64_t kMul = 0x9ddfea08eb382d69ULL;

  // murmur3/splitmix finalizer: full avalanche, so every input bit affects
  // every digest bit.
  static constexpr std::uint64_t Mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 29;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 32;
    return x;
  }

  // Little-endian load, endianness-independent.
  static std::uint64_t Load(const unsigned char* p) {
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < kWord; ++i) {
      word |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    return word;
  }

  void Absorb(std::uint64_t word) { state_ = Mix(state_ ^ word * kMul); }

  std::uint64_t state_ = kInit;
  std::uint64_t length_ = 0;
  std::array<unsigned char, kWord> tail_{};
  std::size_t tail_len_ = 0;
};

}  // namespace kf

#endif  // KF_COMMON_CHECKSUM_H_
