#include "common/buffer_arena.h"

namespace kf {

HostPerfCounters& HostPerfCounters::Global() {
  static HostPerfCounters counters;
  return counters;
}

BufferArena& BufferArena::ThreadLocal() {
  thread_local BufferArena arena;
  return arena;
}

}  // namespace kf
