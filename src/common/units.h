// Unit helpers: byte quantities, simulated time, and human-readable formatting.
//
// Simulated time throughout the library is `kf::SimTime`, a double holding
// seconds. A double keeps the discrete-event arithmetic simple and is precise
// to well under a nanosecond over the second-scale horizons we simulate.
#ifndef KF_COMMON_UNITS_H_
#define KF_COMMON_UNITS_H_

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>

namespace kf {

// Simulated time in seconds.
using SimTime = double;

inline constexpr SimTime kMicrosecond = 1e-6;
inline constexpr SimTime kMillisecond = 1e-3;

inline constexpr std::uint64_t KiB(std::uint64_t n) { return n << 10; }
inline constexpr std::uint64_t MiB(std::uint64_t n) { return n << 20; }
inline constexpr std::uint64_t GiB(std::uint64_t n) { return n << 30; }

// The paper reports bandwidth in decimal GB/s; keep both spellings explicit.
inline constexpr double kGB = 1e9;

// Throughput in GB/s given bytes moved over a simulated duration.
inline double ThroughputGBs(std::uint64_t bytes, SimTime seconds) {
  return seconds > 0 ? static_cast<double>(bytes) / kGB / seconds : 0.0;
}

// "1.234 GB/s" style formatting used by the benchmark harnesses.
inline std::string FormatGBs(double gbs, int precision = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << gbs << " GB/s";
  return os.str();
}

// "12.34 ms" style formatting with automatic unit choice.
inline std::string FormatTime(SimTime seconds, int precision = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  if (seconds >= 1.0) {
    os << seconds << " s";
  } else if (seconds >= 1e-3) {
    os << seconds * 1e3 << " ms";
  } else {
    os << seconds * 1e6 << " us";
  }
  return os.str();
}

// "1.50 GB" style byte-count formatting.
inline std::string FormatBytes(std::uint64_t bytes, int precision = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  if (bytes >= GiB(1)) {
    os << static_cast<double>(bytes) / static_cast<double>(GiB(1)) << " GiB";
  } else if (bytes >= MiB(1)) {
    os << static_cast<double>(bytes) / static_cast<double>(MiB(1)) << " MiB";
  } else if (bytes >= KiB(1)) {
    os << static_cast<double>(bytes) / static_cast<double>(KiB(1)) << " KiB";
  } else {
    os << bytes << " B";
  }
  return os.str();
}

}  // namespace kf

#endif  // KF_COMMON_UNITS_H_
