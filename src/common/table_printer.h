// Aligned plain-text table output for the benchmark harnesses.
//
// Every per-figure bench prints the same rows/series the paper reports; this
// helper keeps that output readable and uniform across binaries.
#ifndef KF_COMMON_TABLE_PRINTER_H_
#define KF_COMMON_TABLE_PRINTER_H_

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace kf {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {}

  // Append a row; each cell is already formatted.
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  // Convenience: format a double with fixed precision.
  static std::string Num(double value, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
  }

  void Print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    PrintRow(os, header_, widths);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto& row : rows_) PrintRow(os, row, widths);
  }

 private:
  static void PrintRow(std::ostream& os, const std::vector<std::string>& row,
                       const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << row[c] << "  ";
    }
    os << "\n";
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kf

#endif  // KF_COMMON_TABLE_PRINTER_H_
