// A non-owning, trivially-copyable callable reference.
//
// The hot host-execution paths (ParallelFor blocks, per-chunk staged-kernel
// bodies) used to box every callable into a std::function, which heap-
// allocates for captures beyond the small-buffer size and defeats inlining.
// FunctionRef is two words (object pointer + thunk pointer), never allocates,
// and is safe wherever the referenced callable outlives the call — which is
// always true for the synchronous fork-join parallelism used here.
//
// Do NOT store a FunctionRef beyond the call it was passed to: it does not
// extend the lifetime of the callable it references.
#ifndef KF_COMMON_FUNCTION_REF_H_
#define KF_COMMON_FUNCTION_REF_H_

#include <memory>
#include <type_traits>
#include <utility>

namespace kf {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() = delete;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::function — call sites pass lambdas directly.
  FunctionRef(F&& f) noexcept
      : object_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        thunk_([](void* object, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(object))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return thunk_(object_, std::forward<Args>(args)...);
  }

 private:
  void* object_;
  R (*thunk_)(void*, Args...);
};

}  // namespace kf

#endif  // KF_COMMON_FUNCTION_REF_H_
