// Prefix-sum (scan) helpers.
//
// The gather stage of every staged RA kernel positions each CTA's buffered
// results with an exclusive scan over per-CTA match counts — the same global
// synchronization structure the paper's SELECT uses between its filter and
// gather CUDA kernels.
#ifndef KF_COMMON_PREFIX_SUM_H_
#define KF_COMMON_PREFIX_SUM_H_

#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

namespace kf {

// Returns the exclusive prefix sum of `counts` plus one trailing element
// holding the grand total, i.e. result[i] is the output offset of chunk i and
// result.back() is the total output size.
template <typename T>
std::vector<T> ExclusiveScanWithTotal(std::span<const T> counts) {
  std::vector<T> offsets(counts.size() + 1);
  offsets[0] = T{};
  std::inclusive_scan(counts.begin(), counts.end(), offsets.begin() + 1);
  return offsets;
}

template <typename T>
std::vector<T> ExclusiveScanWithTotal(const std::vector<T>& counts) {
  return ExclusiveScanWithTotal(std::span<const T>(counts));
}

// In-place variant for pooled workspaces: writes the scan into `offsets`
// (resized to counts.size() + 1). Allocates only when `offsets` lacks
// capacity, so warm runs over a reused workspace are allocation-free.
template <typename T>
void ExclusiveScanWithTotalInto(std::span<const T> counts,
                                std::vector<T>& offsets) {
  offsets.resize(counts.size() + 1);
  offsets[0] = T{};
  std::inclusive_scan(counts.begin(), counts.end(), offsets.begin() + 1);
}

}  // namespace kf

#endif  // KF_COMMON_PREFIX_SUM_H_
