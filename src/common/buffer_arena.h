// BufferArena: a reusable workspace pool for the host execution substrate.
//
// The paper's fusion argument is that intermediates must stay out of slow
// memory AND out of allocator round-trips. The functional staged kernels
// used to re-allocate every per-chunk buffer and every gathered output on
// every run; at benchmark sizes those are multi-hundred-KB allocations that
// glibc serves with mmap/munmap, so every run paid page faults over the
// whole working set. BufferArena keeps workspace objects alive between runs:
// `Acquire<T>()` hands out a pooled instance whose internal vectors retain
// their heap capacity, and the RAII handle returns it on destruction. A warm
// acquire/release cycle performs no heap allocation.
//
// Pools are keyed by type; any default-constructible type can be pooled. If
// the type exposes `std::size_t CapacityBytes() const`, reused capacity is
// accounted into the process-wide HostPerfCounters (hostperf.* metrics).
//
// Thread safety: all arena operations take a short internal lock (locking
// does not allocate). For lock-free steady state, use one arena per worker
// thread (QueryScheduler does) or the per-thread `ThreadLocal()` arena.
//
// Pooled memory held by static/thread-local arenas at process exit is still
// reachable, so LeakSanitizer does not flag it.
#ifndef KF_COMMON_BUFFER_ARENA_H_
#define KF_COMMON_BUFFER_ARENA_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <typeindex>
#include <utility>
#include <vector>

namespace kf {

// Process-wide, lock-free counters for the host-performance substrate.
// Updated from hot paths with relaxed atomics; exported into the metrics
// registry by obs::RecordHostPerfMetrics (cold path).
struct HostPerfCounters {
  std::atomic<std::uint64_t> pool_hits{0};
  std::atomic<std::uint64_t> pool_misses{0};
  std::atomic<std::uint64_t> arena_reused_bytes{0};
  // StagedSelect-family runs that went through the std::function fallback
  // instead of a typed (vectorizable) predicate kernel.
  std::atomic<std::uint64_t> fallback_predicates{0};
  std::atomic<std::uint64_t> typed_predicates{0};

  static HostPerfCounters& Global();
};

namespace internal {
template <typename T, typename = void>
struct HasCapacityBytes : std::false_type {};
template <typename T>
struct HasCapacityBytes<
    T, std::void_t<decltype(std::declval<const T&>().CapacityBytes())>>
    : std::true_type {};
}  // namespace internal

class BufferArena {
 public:
  BufferArena() = default;
  ~BufferArena() = default;
  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;

  // RAII checkout of a pooled T. Returns the object to the arena on
  // destruction; the arena must outlive the handle.
  template <typename T>
  class Handle {
   public:
    Handle(std::unique_ptr<T> object, BufferArena* arena)
        : object_(std::move(object)), arena_(arena) {}
    Handle(Handle&&) noexcept = default;
    Handle& operator=(Handle&&) noexcept = default;
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() {
      if (object_ != nullptr && arena_ != nullptr) {
        arena_->Release<T>(std::move(object_));
      }
    }

    T& operator*() const { return *object_; }
    T* operator->() const { return object_.get(); }
    T* get() const { return object_.get(); }

   private:
    std::unique_ptr<T> object_;
    BufferArena* arena_;
  };

  // Pooled instance of T (default-constructed on a pool miss). Warm path:
  // one lock + pop_back, no allocation.
  template <typename T>
  Handle<T> Acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = pools_.find(std::type_index(typeid(T)));
      if (it != pools_.end() && !it->second.empty()) {
        Entry entry = std::move(it->second.back());
        it->second.pop_back();
        RecordHit(entry.capacity_bytes);
        return Handle<T>(
            std::unique_ptr<T>(static_cast<T*>(entry.object.release())),
            this);
      }
    }
    RecordMiss();
    return Handle<T>(std::make_unique<T>(), this);
  }

  // Returns an object to the pool (normally via ~Handle). Capacity is
  // retained so the next Acquire reuses it.
  template <typename T>
  void Release(std::unique_ptr<T> object) {
    Entry entry;
    entry.capacity_bytes = CapacityOf(*object);
    entry.object = ErasedPtr(object.release(), [](void* p) {
      delete static_cast<T*>(p);
    });
    std::lock_guard<std::mutex> lock(mutex_);
    pools_[std::type_index(typeid(T))].push_back(std::move(entry));
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t reused_bytes = 0;
    double HitRate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };
  Stats stats() const {
    return Stats{hits_.load(std::memory_order_relaxed),
                 misses_.load(std::memory_order_relaxed),
                 reused_bytes_.load(std::memory_order_relaxed)};
  }

  // Number of idle pooled objects across all types (tests).
  std::size_t pooled_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto& [type, pool] : pools_) n += pool.size();
    return n;
  }

  // Drops all idle pooled objects (capacity released to the allocator).
  void Trim() {
    std::lock_guard<std::mutex> lock(mutex_);
    pools_.clear();
  }

  // Per-thread scratch arena for call sites without an explicit arena.
  // Destroyed (and its capacity returned) when the thread exits.
  static BufferArena& ThreadLocal();

 private:
  using ErasedPtr = std::unique_ptr<void, void (*)(void*)>;
  struct Entry {
    ErasedPtr object{nullptr, [](void*) {}};
    std::size_t capacity_bytes = 0;
  };

  template <typename T>
  static std::size_t CapacityOf(const T& object) {
    if constexpr (internal::HasCapacityBytes<T>::value) {
      return object.CapacityBytes();
    } else {
      return sizeof(T);
    }
  }

  void RecordHit(std::size_t reused_bytes) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    reused_bytes_.fetch_add(reused_bytes, std::memory_order_relaxed);
    auto& global = HostPerfCounters::Global();
    global.pool_hits.fetch_add(1, std::memory_order_relaxed);
    global.arena_reused_bytes.fetch_add(reused_bytes,
                                        std::memory_order_relaxed);
  }
  void RecordMiss() {
    misses_.fetch_add(1, std::memory_order_relaxed);
    HostPerfCounters::Global().pool_misses.fetch_add(
        1, std::memory_order_relaxed);
  }

  mutable std::mutex mutex_;
  std::map<std::type_index, std::vector<Entry>> pools_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> reused_bytes_{0};
};

}  // namespace kf

#endif  // KF_COMMON_BUFFER_ARENA_H_
