// Deterministic pseudo-random number generation.
//
// All workload generation in the repository flows through `kf::Rng` so that
// every experiment is reproducible from a seed. The core generator is
// xoshiro256** seeded via splitmix64 (the construction recommended by the
// xoshiro authors); it is much faster than std::mt19937_64 and has no
// measurable bias for our use (uniform ints, floats, Bernoulli draws).
#ifndef KF_COMMON_RANDOM_H_
#define KF_COMMON_RANDOM_H_

#include <array>
#include <cstdint>

#include "common/error.h"

namespace kf {

// splitmix64 step; used for seeding and as a cheap stateless hash.
inline constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { Reseed(seed); }

  void Reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [lo, hi] (inclusive). Uses Lemire's multiply-shift
  // rejection-free approximation, adequate for workload synthesis. The
  // 64x64 -> high-64 multiply is done in 32-bit limbs to stay within
  // standard C++ (no __int128).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    KF_REQUIRE(lo <= hi) << "empty range [" << lo << ", " << hi << "]";
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
    return lo + static_cast<std::int64_t>(MulHigh((*this)(), span));
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) { return lo + (hi - lo) * UniformDouble(); }

  // Bernoulli draw with probability `p` of returning true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Split off an independently-seeded child generator; used to give each
  // worker thread its own deterministic stream.
  Rng Split() { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  // High 64 bits of the 128-bit product a*b, via 32-bit limbs.
  static constexpr std::uint64_t MulHigh(std::uint64_t a, std::uint64_t b) {
    const std::uint64_t a_lo = a & 0xffffffffULL, a_hi = a >> 32;
    const std::uint64_t b_lo = b & 0xffffffffULL, b_hi = b >> 32;
    const std::uint64_t lo_lo = a_lo * b_lo;
    const std::uint64_t hi_lo = a_hi * b_lo;
    const std::uint64_t lo_hi = a_lo * b_hi;
    const std::uint64_t hi_hi = a_hi * b_hi;
    const std::uint64_t cross = (lo_lo >> 32) + (hi_lo & 0xffffffffULL) + lo_hi;
    return hi_hi + (hi_lo >> 32) + (cross >> 32);
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace kf

#endif  // KF_COMMON_RANDOM_H_
