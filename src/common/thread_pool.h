// A small work-stealing-free thread pool with a blocking ParallelFor.
//
// The pool backs the *functional* execution of staged kernels: each simulated
// CTA becomes one task. Simulated time never depends on the pool — timing
// comes from the cost model — so the pool only needs to be correct, not
// cleverly scheduled.
#ifndef KF_COMMON_THREAD_POOL_H_
#define KF_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kf {

class ThreadPool {
 public:
  // `thread_count == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  // Enqueue a task; tasks must not throw (exceptions terminate).
  void Submit(std::function<void()> task);

  // Block until every submitted task has finished.
  void Wait();

  // Run body(i) for i in [0, n), partitioned into roughly 4x-oversubscribed
  // blocks, and block until done. Executes inline when n is small or the pool
  // has a single thread.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t begin, std::size_t end)>& body);

  // Process-wide pool for library internals (sized to the machine).
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace kf

#endif  // KF_COMMON_THREAD_POOL_H_
