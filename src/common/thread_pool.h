// A small work-stealing-free thread pool with a blocking ParallelFor.
//
// The pool backs the *functional* execution of staged kernels: each simulated
// CTA becomes one task. Simulated time never depends on the pool — timing
// comes from the cost model — so the pool only needs to be correct, not
// cleverly scheduled.
//
// ParallelFor/ParallelForEach dispatch through a stack-allocated job with an
// atomic block counter: workers (and the calling thread) claim blocks with
// fetch_add, so a parallel loop performs zero heap allocations regardless of
// trip count. Submit keeps the std::function queue for irregular task graphs.
#ifndef KF_COMMON_THREAD_POOL_H_
#define KF_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/function_ref.h"

namespace kf {

class ThreadPool {
 public:
  // `thread_count == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  // Enqueue a task; tasks must not throw (exceptions terminate).
  void Submit(std::function<void()> task);

  // Block until every submitted task has finished.
  void Wait();

  // Run body(begin, end) over a partition of [0, n) and block until done.
  // Blocks are claimed from an atomic counter — no per-block heap allocation.
  // Executes inline when n is small, the pool has a single thread, or another
  // parallel loop is already in flight (nested/concurrent calls degrade to
  // serial rather than deadlock).
  void ParallelFor(std::size_t n,
                   FunctionRef<void(std::size_t begin, std::size_t end)> body);

  // Run body(i) for i in [0, count) with one claim per index — for coarse
  // per-chunk work where each index is a whole staged-kernel chunk.
  void ParallelForEach(std::size_t count, FunctionRef<void(std::size_t)> body);

  // Process-wide pool for library internals (sized to the machine).
  static ThreadPool& Shared();

 private:
  // One fork-join loop, living on the caller's stack for its whole lifetime.
  // `active_workers` is guarded by the pool mutex; the caller only tears the
  // job down after it drops to zero, so no worker can touch a dead job.
  struct ParallelJob {
    FunctionRef<void(std::size_t, std::size_t)> body;
    std::size_t n = 0;
    std::size_t block_size = 1;
    std::atomic<std::size_t> next{0};
    std::size_t active_workers = 0;
  };

  void WorkerLoop();
  // Claims and runs blocks until the job is exhausted.
  static void RunJobBlocks(ParallelJob* job);
  // Installs `job`, participates, and blocks until all helpers leave.
  // Returns false (without running anything) when another job is in flight.
  bool TryRunJob(ParallelJob& job);

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  ParallelJob* job_ = nullptr;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace kf

#endif  // KF_COMMON_THREAD_POOL_H_
