// Error handling primitives for the kernel-fusion library.
//
// The library follows the C++ Core Guidelines: exceptions for errors that the
// immediate caller cannot handle, assert-style macros for programming errors.
// `kf::Error` is the single exception type thrown by the library; `KF_REQUIRE`
// validates user-facing preconditions and internal invariants (always on).
#ifndef KF_COMMON_ERROR_H_
#define KF_COMMON_ERROR_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace kf {

// The exception type thrown for all recoverable library errors (bad arguments,
// capacity exhaustion, malformed plans). Carries a human-readable message.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

// Helper that throws when it goes out of scope at the end of the full
// expression, after the failure message has been streamed in.
class ThrowOnExit {
 public:
  ThrowOnExit(const char* file, int line, const char* cond) {
    stream_ << file << ":" << line << ": check failed: " << cond << " ";
  }
  ThrowOnExit(const ThrowOnExit&) = delete;
  ThrowOnExit& operator=(const ThrowOnExit&) = delete;
  ~ThrowOnExit() noexcept(false) { throw Error(stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace kf

// Precondition/invariant check that stays on in release builds. Usage:
//   KF_REQUIRE(n > 0) << "element count must be positive, got " << n;
#define KF_REQUIRE(cond)  \
  if (cond) {             \
  } else                  \
    ::kf::detail::ThrowOnExit(__FILE__, __LINE__, #cond).stream()

#endif  // KF_COMMON_ERROR_H_
