// Error handling primitives for the kernel-fusion library.
//
// The library follows the C++ Core Guidelines: exceptions for errors that the
// immediate caller cannot handle, assert-style macros for programming errors.
// `kf::Error` is the base exception type thrown by the library; typed
// subclasses carry a stable `ErrorCode` so callers (the query scheduler's
// retry/degrade machinery, clients waiting on futures) can branch on the
// *kind* of failure instead of parsing `what()`. `KF_REQUIRE` validates
// user-facing preconditions and internal invariants (always on);
// `KF_REQUIRE_AS` / `KF_FAIL_AS` throw a specific subclass.
#ifndef KF_COMMON_ERROR_H_
#define KF_COMMON_ERROR_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace kf {

// Stable machine-readable failure kinds. Values are part of the library's
// API contract (logged, matched by retry policies, labeled in metrics);
// add new kinds at the end.
enum class ErrorCode : std::uint8_t {
  kGeneric = 0,        // unclassified invariant violation
  kInvalidArgument,    // malformed input: bad CSV, bad plan, bad handle
  kDeviceFault,        // transient device error: copy engine, ECC, injected OOM
  kTimeout,            // per-query deadline exceeded (virtual time)
  kCapacityExceeded,   // resource genuinely exhausted: device memory, queues
  kCancelled,          // work abandoned: scheduler shutdown, terminated pool
  kDataCorruption,     // checksum/audit mismatch: silent corruption detected
};

inline const char* ToString(ErrorCode code) {
  switch (code) {
    case ErrorCode::kGeneric: return "generic";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kDeviceFault: return "device_fault";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kCapacityExceeded: return "capacity_exceeded";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kDataCorruption: return "data_corruption";
  }
  return "?";
}

// The exception type thrown for all recoverable library errors (bad
// arguments, capacity exhaustion, malformed plans, device faults). Carries a
// human-readable message plus the machine-readable code.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what, ErrorCode code = ErrorCode::kGeneric)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

// Typed subclasses: catchable individually, and the base `kf::Error` catch
// sites keep working (the code survives either way).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what)
      : Error(what, ErrorCode::kInvalidArgument) {}
};

class DeviceFault : public Error {
 public:
  explicit DeviceFault(const std::string& what)
      : Error(what, ErrorCode::kDeviceFault) {}
};

class Timeout : public Error {
 public:
  explicit Timeout(const std::string& what) : Error(what, ErrorCode::kTimeout) {}
};

class CapacityExceeded : public Error {
 public:
  explicit CapacityExceeded(const std::string& what)
      : Error(what, ErrorCode::kCapacityExceeded) {}
};

class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& what)
      : Error(what, ErrorCode::kCancelled) {}
};

class DataCorruption : public Error {
 public:
  explicit DataCorruption(const std::string& what)
      : Error(what, ErrorCode::kDataCorruption) {}
};

namespace detail {

// Helper that throws `E` when it goes out of scope at the end of the full
// expression, after the failure message has been streamed in.
template <typename E>
class ThrowOnExit {
 public:
  ThrowOnExit(const char* file, int line, const char* cond) {
    stream_ << file << ":" << line << ": check failed: " << cond << " ";
  }
  ThrowOnExit(const ThrowOnExit&) = delete;
  ThrowOnExit& operator=(const ThrowOnExit&) = delete;
  ~ThrowOnExit() noexcept(false) { throw E(stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace kf

// Precondition/invariant check that stays on in release builds. Usage:
//   KF_REQUIRE(n > 0) << "element count must be positive, got " << n;
#define KF_REQUIRE(cond) KF_REQUIRE_AS(::kf::Error, cond)

// Same, but throws the given `kf::Error` subclass so callers can branch on
// the error code. Usage:
//   KF_REQUIRE_AS(::kf::InvalidArgument, cells == fields) << "...";
#define KF_REQUIRE_AS(ErrorType, cond) \
  if (cond) {                          \
  } else                               \
    ::kf::detail::ThrowOnExit<ErrorType>(__FILE__, __LINE__, #cond).stream()

// Unconditional typed throw with a streamed message. Usage:
//   KF_FAIL_AS(::kf::Timeout) << "query exceeded deadline of " << d << "s";
#define KF_FAIL_AS(ErrorType) \
  ::kf::detail::ThrowOnExit<ErrorType>(__FILE__, __LINE__, "failure").stream()

#endif  // KF_COMMON_ERROR_H_
