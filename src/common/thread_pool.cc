#include "common/thread_pool.h"

#include <algorithm>

namespace kf {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  // Help drain the queue so that a ParallelFor issued from inside a worker
  // (nested parallelism) cannot deadlock waiting for itself.
  std::unique_lock lock(mutex_);
  while (in_flight_ != 0) {
    if (!queue_.empty()) {
      auto task = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      task();
      lock.lock();
      if (--in_flight_ == 0) all_done_.notify_all();
    } else {
      all_done_.wait(lock, [this] { return in_flight_ == 0 || !queue_.empty(); });
    }
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t threads = thread_count();
  if (threads <= 1 || n < 2048) {
    body(0, n);
    return;
  }
  const std::size_t blocks = std::min(n, threads * 4);
  const std::size_t block_size = (n + blocks - 1) / blocks;
  for (std::size_t begin = 0; begin < n; begin += block_size) {
    const std::size_t end = std::min(n, begin + block_size);
    Submit([&body, begin, end] { body(begin, end); });
  }
  Wait();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace kf
