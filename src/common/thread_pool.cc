#include "common/thread_pool.h"

#include <algorithm>

namespace kf {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  // Help drain the queue so that a Wait issued from inside a worker (nested
  // parallelism) cannot deadlock waiting for itself.
  std::unique_lock lock(mutex_);
  while (in_flight_ != 0) {
    if (!queue_.empty()) {
      auto task = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      task();
      lock.lock();
      if (--in_flight_ == 0) all_done_.notify_all();
    } else {
      all_done_.wait(lock, [this] { return in_flight_ == 0 || !queue_.empty(); });
    }
  }
}

void ThreadPool::RunJobBlocks(ParallelJob* job) {
  for (;;) {
    const std::size_t begin =
        job->next.fetch_add(job->block_size, std::memory_order_relaxed);
    if (begin >= job->n) return;
    job->body(begin, std::min(job->n, begin + job->block_size));
  }
}

bool ThreadPool::TryRunJob(ParallelJob& job) {
  {
    std::lock_guard lock(mutex_);
    // Another loop is already in flight (concurrent caller, or a nested
    // ParallelFor from inside a job body): degrade to inline execution.
    if (job_ != nullptr) return false;
    job_ = &job;
  }
  work_available_.notify_all();
  RunJobBlocks(&job);
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [&job] { return job.active_workers == 0; });
  job_ = nullptr;
  return true;
}

void ThreadPool::ParallelFor(std::size_t n,
                             FunctionRef<void(std::size_t, std::size_t)> body) {
  if (n == 0) return;
  const std::size_t threads = thread_count();
  if (threads <= 1 || n < 2048) {
    body(0, n);
    return;
  }
  // ~4x oversubscription for load balance, but never blocks so small that
  // the atomic claim dominates the body.
  const std::size_t block_size =
      std::max<std::size_t>(512, (n + threads * 4 - 1) / (threads * 4));
  ParallelJob job{body, n, block_size};
  if (!TryRunJob(job)) body(0, n);
}

void ThreadPool::ParallelForEach(std::size_t count,
                                 FunctionRef<void(std::size_t)> body) {
  if (count == 0) return;
  if (thread_count() <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  auto block_body = [&body](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  };
  // block_size 1: each index is a whole chunk of work.
  ParallelJob job{block_body, count, 1};
  if (!TryRunJob(job)) block_body(0, count);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_available_.wait(lock, [this] {
      return shutting_down_ || !queue_.empty() ||
             (job_ != nullptr &&
              job_->next.load(std::memory_order_relaxed) < job_->n);
    });
    if (job_ != nullptr &&
        job_->next.load(std::memory_order_relaxed) < job_->n) {
      ParallelJob* job = job_;
      ++job->active_workers;
      lock.unlock();
      RunJobBlocks(job);
      lock.lock();
      if (--job->active_workers == 0) all_done_.notify_all();
      continue;
    }
    if (!queue_.empty()) {
      auto task = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      task();
      lock.lock();
      if (--in_flight_ == 0) all_done_.notify_all();
      continue;
    }
    if (shutting_down_) return;  // drained
  }
}

}  // namespace kf
