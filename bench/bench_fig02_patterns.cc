// Fig 2 — the operator combinations mined from TPC-H that are candidates for
// fusion. For each pattern (a)-(h) this harness builds the graph, runs the
// fusion planner, and reports the cluster structure plus the modeled
// kernel-time gain of fusing it.
#include "bench/bench_util.h"
#include "core/operator_cost.h"

namespace {

using namespace kf;
using relational::AggregateSpec;
using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::Schema;

Schema KV() { return Schema{{"k", DataType::kInt64}, {"v", DataType::kInt64}}; }

OperatorDesc Sel(const char* label) {
  return OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(5)), label);
}

struct Pattern {
  std::string name;
  core::OpGraph graph;
};

std::vector<Pattern> BuildPatterns() {
  std::vector<Pattern> patterns;
  {
    Pattern p{"(a) SELECT -> SELECT -> SELECT", {}};
    auto src = p.graph.AddSource("A1", KV(), 1000000);
    auto s1 = p.graph.AddOperator(Sel("select1"), src);
    auto s2 = p.graph.AddOperator(Sel("select2"), s1);
    p.graph.AddOperator(Sel("select3"), s2);
    patterns.push_back(std::move(p));
  }
  {
    Pattern p{"(b) JOIN -> JOIN", {}};
    auto a = p.graph.AddSource("A1", KV(), 1000000);
    auto b = p.graph.AddSource("A2", KV(), 100000);
    auto c = p.graph.AddSource("A3", KV(), 100000);
    auto j1 = p.graph.AddOperator(OperatorDesc::Join(0, 0, "join1"), a, b);
    p.graph.AddOperator(OperatorDesc::Join(0, 0, "join2"), j1, c);
    patterns.push_back(std::move(p));
  }
  {
    Pattern p{"(c) one input, several SELECTs", {}};
    auto src = p.graph.AddSource("A1", KV(), 1000000);
    p.graph.AddOperator(Sel("select1"), src);
    p.graph.AddOperator(Sel("select2"), src);
    p.graph.AddOperator(Sel("select3"), src);
    patterns.push_back(std::move(p));
  }
  {
    Pattern p{"(d) JOIN -> SELECT", {}};
    auto a = p.graph.AddSource("A1", KV(), 1000000);
    auto b = p.graph.AddSource("A2", KV(), 100000);
    auto j = p.graph.AddOperator(OperatorDesc::Join(0, 0, "join"), a, b);
    p.graph.AddOperator(Sel("select"), j);
    patterns.push_back(std::move(p));
  }
  {
    Pattern p{"(e) JOIN -> ARITH", {}};
    auto a = p.graph.AddSource("A1", KV(), 1000000);
    auto b = p.graph.AddSource("A2", KV(), 100000);
    auto j = p.graph.AddOperator(OperatorDesc::Join(0, 0, "join"), a, b);
    p.graph.AddOperator(
        OperatorDesc::Arith(Expr::Add(Expr::FieldRef(1), Expr::FieldRef(2)), "sum"), j);
    patterns.push_back(std::move(p));
  }
  {
    Pattern p{"(f) JOIN of two selected tables", {}};
    auto a = p.graph.AddSource("A1", KV(), 1000000);
    auto b = p.graph.AddSource("A2", KV(), 1000000);
    auto sb = p.graph.AddOperator(Sel("select_b"), b);
    auto sa = p.graph.AddOperator(Sel("select_a"), a);
    p.graph.AddOperator(OperatorDesc::Join(0, 0, "join"), sa, sb);
    patterns.push_back(std::move(p));
  }
  {
    Pattern p{"(g) SELECT -> AGGREGATION", {}};
    auto src = p.graph.AddSource("A1", KV(), 1000000);
    auto s = p.graph.AddOperator(Sel("select"), src);
    p.graph.AddOperator(
        OperatorDesc::Aggregate({},
                                {AggregateSpec{AggregateSpec::Func::kSum, 1, "sum"}}),
        s);
    patterns.push_back(std::move(p));
  }
  {
    Pattern p{"(h) ARITH -> PROJECT (discount*price)", {}};
    auto src = p.graph.AddSource("A1",
                                 Schema{{"price", DataType::kFloat64},
                                        {"discount", DataType::kFloat64}},
                                 1000000);
    auto ar = p.graph.AddOperator(
        OperatorDesc::Arith(
            Expr::Mul(Expr::Sub(Expr::LitF(1.0), Expr::FieldRef(1)), Expr::FieldRef(0)),
            "total"),
        src);
    p.graph.AddOperator(OperatorDesc::Project({2}, "project"), ar);
    patterns.push_back(std::move(p));
  }
  return patterns;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  Init(argc, argv, "fig02_patterns");
  PrintHeader("Fig 2: common operator combinations to fuse",
              "every pattern must be discovered by the fusion planner");

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  TablePrinter table({"Pattern", "Ops", "Clusters", "Fused", "Kernel-time gain"});
  double pattern_index = 0;
  std::size_t fused_total = 0;
  for (Pattern& pattern : BuildPatterns()) {
    const core::FusionPlan plan = PlanFusion(pattern.graph);
    std::size_t op_count = 0;
    for (core::NodeId id : pattern.graph.TopologicalOrder()) {
      if (!pattern.graph.node(id).is_source) ++op_count;
    }
    core::ExecutorOptions serial;
    serial.strategy = core::Strategy::kSerial;
    core::ExecutorOptions fused;
    fused.strategy = core::Strategy::kFused;
    const auto unfused_report = executor.EstimateOnly(pattern.graph, {}, serial);
    const auto fused_report = executor.EstimateOnly(pattern.graph, {}, fused);
    table.AddRow({pattern.name, std::to_string(op_count),
                  std::to_string(plan.clusters.size()),
                  std::to_string(plan.fused_cluster_count()),
                  TablePrinter::Num(
                      unfused_report.compute_time / fused_report.compute_time, 2) +
                      "x"});
    Record("kernel_time_gain", "x", pattern_index,
           unfused_report.compute_time / fused_report.compute_time);
    fused_total += plan.fused_cluster_count();
    ++pattern_index;
  }
  table.Print();
  PrintSummaryLine("all eight TPC-H patterns fuse as the paper describes "
                   "(pattern f's build-side select stays a separate kernel)");
  Summary("fused_clusters_total", static_cast<double>(fused_total),
          obs::Direction::kTwoSided);
  return Finish();
}
