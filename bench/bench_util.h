// Shared helpers for the per-figure benchmark harnesses.
//
// Every harness prints the same rows/series the corresponding paper table or
// figure reports, computed from the simulated device (see DESIGN.md §6 for
// the timing methodology). Headline comparisons against the paper's numbers
// are summarized at the end of each binary and collected in EXPERIMENTS.md.
//
// Besides the human-readable tables, every harness supports machine-readable
// output for CI (see docs/observability.md):
//   --json <path>   write the run as a kf-bench-v1 JSON document (series,
//                   summary metrics, and a dump of the metrics registry)
//   --scale <f>     scale the element-count sweeps by `f` (CI smoke runs use
//                   small scales; summaries stay deterministic)
// Harnesses call Init(argc, argv, name) first, Record()/Summary() as they
// compute, and `return Finish();` last.
#ifndef KF_BENCH_BENCH_UTIL_H_
#define KF_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "core/query_executor.h"
#include "core/select_chain.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/regression.h"

namespace kf::bench {

// State of the running harness: CLI options plus the series and summary
// metrics recorded so far. One per process.
struct Session {
  std::string benchmark;    // e.g. "fig14_fission"
  std::string json_path;    // empty: no JSON output
  double scale = 1.0;       // sweep scale factor (--scale)

  struct Series {
    std::string name;
    std::string unit;
    std::vector<std::pair<double, double>> points;  // (x, y)
  };
  struct SummaryMetric {
    std::string name;
    double value = 0.0;
    obs::Direction direction = obs::Direction::kHigherIsBetter;
    std::string unit;
  };
  std::vector<Series> series;
  std::vector<SummaryMetric> summaries;
};

inline Session& CurrentSession() {
  static Session session;
  return session;
}

// Parses harness CLI flags. Unknown flags are an error so CI typos fail
// loudly. Exits (success) on --help.
inline void Init(int argc, char** argv, const std::string& benchmark) {
  Session& session = CurrentSession();
  session.benchmark = benchmark;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      KF_REQUIRE(i + 1 < argc) << flag << " requires a value";
      return argv[++i];
    };
    if (arg == "--json") {
      session.json_path = value("--json");
    } else if (arg == "--scale") {
      session.scale = std::stod(value("--scale"));
      KF_REQUIRE(session.scale > 0) << "--scale must be positive";
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: bench_" << benchmark
                << " [--json <path>] [--scale <factor>]\n"
                   "  --json <path>    write a kf-bench-v1 JSON document\n"
                   "  --scale <f>      scale element-count sweeps by f\n";
      std::exit(0);
    } else {
      std::cerr << "unknown argument '" << arg << "' (try --help)\n";
      std::exit(2);
    }
  }
}

// Sweep scale factor set with --scale (1.0 by default).
inline double Scale() { return CurrentSession().scale; }

// Applies the session scale to an element count (never below 4096 so staged
// kernels keep a sane chunking).
inline std::uint64_t Scaled(std::uint64_t elements) {
  const double scaled = static_cast<double>(elements) * Scale();
  return std::max<std::uint64_t>(4096, static_cast<std::uint64_t>(scaled));
}

// Records one point of a named series (gated by bench_compare, two-sided).
inline void Record(const std::string& series_name, const std::string& unit, double x,
                   double y) {
  Session& session = CurrentSession();
  for (auto& series : session.series) {
    if (series.name == series_name) {
      series.points.emplace_back(x, y);
      return;
    }
  }
  session.series.push_back(Session::Series{series_name, unit, {{x, y}}});
}

// Records a named headline number (gated by bench_compare in `direction`).
inline void Summary(const std::string& name, double value,
                    obs::Direction direction = obs::Direction::kHigherIsBetter,
                    const std::string& unit = "") {
  CurrentSession().summaries.push_back(
      Session::SummaryMetric{name, value, direction, unit});
}

// Serializes the session as a kf-bench-v1 document:
//   {"schema": "kf-bench-v1", "benchmark": ..., "scale": ...,
//    "series": [{"name", "unit", "points": [[x, y], ...]}, ...],
//    "summaries": [{"name", "value", "direction", "unit"}, ...],
//    "metrics": <registry dump>}
inline obs::Json SessionToJson(const Session& session,
                               const obs::MetricsRegistry& registry) {
  obs::Json doc = obs::Json::MakeObject();
  doc["schema"] = obs::Json("kf-bench-v1");
  doc["benchmark"] = obs::Json(session.benchmark);
  doc["scale"] = obs::Json(session.scale);
  obs::Json series_list = obs::Json::MakeArray();
  for (const auto& series : session.series) {
    obs::Json entry = obs::Json::MakeObject();
    entry["name"] = obs::Json(series.name);
    entry["unit"] = obs::Json(series.unit);
    obs::Json points = obs::Json::MakeArray();
    for (const auto& [x, y] : series.points) {
      points.push_back(obs::Json(obs::Json::Array{obs::Json(x), obs::Json(y)}));
    }
    entry["points"] = std::move(points);
    series_list.push_back(std::move(entry));
  }
  doc["series"] = std::move(series_list);
  obs::Json summaries = obs::Json::MakeArray();
  for (const auto& summary : session.summaries) {
    obs::Json entry = obs::Json::MakeObject();
    entry["name"] = obs::Json(summary.name);
    entry["value"] = obs::Json(summary.value);
    entry["direction"] = obs::Json(obs::ToString(summary.direction));
    entry["unit"] = obs::Json(summary.unit);
    summaries.push_back(std::move(entry));
  }
  doc["summaries"] = std::move(summaries);
  doc["metrics"] = registry.ToJson();
  return doc;
}

// Writes the JSON document if --json was given. Returns the process exit
// code (nonzero when the file cannot be written).
inline int Finish() {
  Session& session = CurrentSession();
  if (session.json_path.empty()) return 0;
  const obs::Json doc = SessionToJson(session, obs::MetricsRegistry::Default());
  std::ofstream out(session.json_path);
  if (!out) {
    std::cerr << "cannot write JSON output to '" << session.json_path << "'\n";
    return 1;
  }
  out << doc.Dump(2);
  out.close();
  std::cout << "\n[json written to " << session.json_path << "]\n";
  return out.fail() ? 1 : 0;
}

// The element-count sweep the paper uses for the in-memory experiments
// (Figs 4, 8, 11, 12): tens to hundreds of millions of 32-bit integers.
// Scaled by --scale.
inline std::vector<std::uint64_t> PaperSweep() {
  std::vector<std::uint64_t> sweep;
  for (std::uint64_t n :
       {4'194'304ull, 33'554'432ull, 104'857'600ull, 205'520'896ull, 415'236'096ull}) {
    sweep.push_back(Scaled(n));
  }
  return sweep;
}

// The large-data sweep for the fission experiments (Figs 14, 16): 0.5-4
// billion elements, beyond the 6 GB device memory. Scaled by --scale.
inline std::vector<std::uint64_t> LargeSweep() {
  std::vector<std::uint64_t> sweep;
  for (std::uint64_t n : {500'000'000ull, 1'000'000'000ull, 2'000'000'000ull,
                          3'000'000'000ull, 4'000'000'000ull}) {
    sweep.push_back(Scaled(n));
  }
  return sweep;
}

inline std::string Millions(std::uint64_t elements) {
  return TablePrinter::Num(static_cast<double>(elements) / 1e6, 1) + "M";
}

// Runs a select chain in timing-only mode and returns the report.
inline core::ExecutionReport RunChain(
    const core::QueryExecutor& executor, const core::SelectChain& chain,
    core::Strategy strategy,
    core::IntermediatePolicy policy = core::IntermediatePolicy::kKeepOnDevice,
    int fission_segments = 12,
    sim::HostMemoryKind host_memory = sim::HostMemoryKind::kPinned) {
  core::ExecutorOptions options;
  options.strategy = strategy;
  options.intermediates = policy;
  options.fission_segments = fission_segments;
  options.host_memory = host_memory;
  return executor.EstimateOnly(chain.graph, chain.expected_rows, options);
}

inline double ChainThroughput(const core::ExecutionReport& report,
                              const core::SelectChain& chain) {
  return report.ThroughputGBs(chain.input_bytes());
}

// Realized per-node row counts from a small functional run, scaled by
// `factor` to model a production-sized data set. Aggregations whose group
// count is bounded (e.g. Q1's 6 flag/status groups) keep their realized
// cardinality; aggregations keyed by scaling attributes (e.g. per-order
// counts) scale with the input.
inline std::map<core::NodeId, std::uint64_t> ScaledRowCounts(
    const core::OpGraph& graph,
    const std::map<core::NodeId, relational::Table>& sources, double factor) {
  std::map<core::NodeId, relational::Table> computed;
  std::map<core::NodeId, std::uint64_t> rows;
  auto table_of = [&](core::NodeId id) -> const relational::Table& {
    auto it = sources.find(id);
    return it != sources.end() ? it->second : computed.at(id);
  };
  for (core::NodeId id : graph.TopologicalOrder()) {
    const core::OpNode& node = graph.node(id);
    std::uint64_t realized = 0;
    if (node.is_source) {
      realized = sources.at(id).row_count();
    } else {
      const relational::Table& left = table_of(node.inputs[0]);
      const relational::Table* right =
          node.inputs.size() > 1 ? &table_of(node.inputs[1]) : nullptr;
      relational::Table out = relational::ApplyOperator(node.desc, left, right);
      realized = out.row_count();
      computed.emplace(id, std::move(out));
    }
    const bool bounded_groups =
        node.desc.kind == relational::OpKind::kAggregate && realized <= 64;
    const bool downstream_of_bounded =
        !node.is_source && !node.inputs.empty() &&
        rows.count(node.inputs[0]) != 0 &&
        rows.at(node.inputs[0]) <= 64 && realized <= 64;
    rows[id] = (bounded_groups || downstream_of_bounded)
                   ? realized
                   : static_cast<std::uint64_t>(static_cast<double>(realized) * factor);
  }
  return rows;
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "Reproduces: " << paper_ref << "\n\n";
}

inline void PrintSummaryLine(const std::string& line) {
  std::cout << "  -> " << line << "\n";
}

}  // namespace kf::bench

#endif  // KF_BENCH_BENCH_UTIL_H_
