// Shared helpers for the per-figure benchmark harnesses.
//
// Every harness prints the same rows/series the corresponding paper table or
// figure reports, computed from the simulated device (see DESIGN.md §6 for
// the timing methodology). Headline comparisons against the paper's numbers
// are summarized at the end of each binary and collected in EXPERIMENTS.md.
#ifndef KF_BENCH_BENCH_UTIL_H_
#define KF_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/table_printer.h"
#include "common/units.h"
#include "core/query_executor.h"
#include "core/select_chain.h"

namespace kf::bench {

// The element-count sweep the paper uses for the in-memory experiments
// (Figs 4, 8, 11, 12): tens to hundreds of millions of 32-bit integers.
inline std::vector<std::uint64_t> PaperSweep() {
  return {4'194'304, 33'554'432, 104'857'600, 205'520'896, 415'236'096};
}

// The large-data sweep for the fission experiments (Figs 14, 16): 0.5-4
// billion elements, beyond the 6 GB device memory.
inline std::vector<std::uint64_t> LargeSweep() {
  return {500'000'000, 1'000'000'000, 2'000'000'000, 3'000'000'000, 4'000'000'000};
}

inline std::string Millions(std::uint64_t elements) {
  return TablePrinter::Num(static_cast<double>(elements) / 1e6, 1) + "M";
}

// Runs a select chain in timing-only mode and returns the report.
inline core::ExecutionReport RunChain(
    const core::QueryExecutor& executor, const core::SelectChain& chain,
    core::Strategy strategy,
    core::IntermediatePolicy policy = core::IntermediatePolicy::kKeepOnDevice,
    int fission_segments = 12,
    sim::HostMemoryKind host_memory = sim::HostMemoryKind::kPinned) {
  core::ExecutorOptions options;
  options.strategy = strategy;
  options.intermediates = policy;
  options.fission_segments = fission_segments;
  options.host_memory = host_memory;
  return executor.EstimateOnly(chain.graph, chain.expected_rows, options);
}

inline double ChainThroughput(const core::ExecutionReport& report,
                              const core::SelectChain& chain) {
  return report.ThroughputGBs(chain.input_bytes());
}

// Realized per-node row counts from a small functional run, scaled by
// `factor` to model a production-sized data set. Aggregations whose group
// count is bounded (e.g. Q1's 6 flag/status groups) keep their realized
// cardinality; aggregations keyed by scaling attributes (e.g. per-order
// counts) scale with the input.
inline std::map<core::NodeId, std::uint64_t> ScaledRowCounts(
    const core::OpGraph& graph,
    const std::map<core::NodeId, relational::Table>& sources, double factor) {
  std::map<core::NodeId, relational::Table> computed;
  std::map<core::NodeId, std::uint64_t> rows;
  auto table_of = [&](core::NodeId id) -> const relational::Table& {
    auto it = sources.find(id);
    return it != sources.end() ? it->second : computed.at(id);
  };
  for (core::NodeId id : graph.TopologicalOrder()) {
    const core::OpNode& node = graph.node(id);
    std::uint64_t realized = 0;
    if (node.is_source) {
      realized = sources.at(id).row_count();
    } else {
      const relational::Table& left = table_of(node.inputs[0]);
      const relational::Table* right =
          node.inputs.size() > 1 ? &table_of(node.inputs[1]) : nullptr;
      relational::Table out = relational::ApplyOperator(node.desc, left, right);
      realized = out.row_count();
      computed.emplace(id, std::move(out));
    }
    const bool bounded_groups =
        node.desc.kind == relational::OpKind::kAggregate && realized <= 64;
    const bool downstream_of_bounded =
        !node.is_source && !node.inputs.empty() &&
        rows.count(node.inputs[0]) != 0 &&
        rows.at(node.inputs[0]) <= 64 && realized <= 64;
    rows[id] = (bounded_groups || downstream_of_bounded)
                   ? realized
                   : static_cast<std::uint64_t>(static_cast<double>(realized) * factor);
  }
  return rows;
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "Reproduces: " << paper_ref << "\n\n";
}

inline void PrintSummaryLine(const std::string& line) {
  std::cout << "  -> " << line << "\n";
}

}  // namespace kf::bench

#endif  // KF_BENCH_BENCH_UTIL_H_
