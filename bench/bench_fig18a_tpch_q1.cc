// Fig 18(a) — TPC-H Q1: not optimized vs fusion vs fusion+fission, plus the
// fused-block-only speedup the paper quotes (3.18x over SELECT + 6 JOINs).
#include "bench/bench_util.h"
#include "tpch/q1.h"

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  using core::Strategy;
  Init(argc, argv, "fig18a_tpch_q1");
  PrintHeader("Fig 18(a): TPC-H Q1",
              "paper: fusion 1.25x, fission another ~1%, 26.5% total; fused "
              "SELECT+6-JOIN block alone 3.18x; SORT ~71% of baseline time");

  // Functional pilot at a tractable size; production scale modeled by
  // scaling the realized per-node cardinalities to ~6M lineitems (TPC-H SF1).
  tpch::TpchConfig config;
  config.order_count = std::max(500, static_cast<int>(20000 * Scale()));
  config.supplier_count = std::max(100, static_cast<int>(500 * Scale()));
  const tpch::TpchData data = MakeTpchData(config);
  tpch::QueryPlan plan = BuildQ1Plan(data);
  const double factor = 6'000'000.0 / static_cast<double>(data.lineitem.row_count());
  const auto rows = ScaledRowCounts(plan.graph, plan.sources, factor);

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  auto run = [&](Strategy strategy) {
    core::ExecutorOptions options;
    options.strategy = strategy;
    options.fusion.register_budget = 63;
    return executor.EstimateOnly(plan.graph, rows, options);
  };
  const auto serial = run(Strategy::kSerial);
  const auto fused = run(Strategy::kFused);
  const auto both = run(Strategy::kFusedFission);

  TablePrinter table({"Variant", "Normalized time", "Compute", "PCIe", "Launches"});
  auto add = [&](const char* name, const core::ExecutionReport& r) {
    table.AddRow({name, TablePrinter::Num(r.makespan / serial.makespan, 3),
                  FormatTime(r.compute_time),
                  FormatTime(r.input_output_time + r.round_trip_time),
                  std::to_string(r.kernel_launches)});
  };
  add("Not optimized", serial);
  add("Fusion", fused);
  add("Fusion + Fission", both);
  table.Print();

  PrintSummaryLine("fusion speedup: " +
                   TablePrinter::Num(serial.makespan / fused.makespan, 2) +
                   "x (paper: 1.25x)");
  PrintSummaryLine("fusion+fission total improvement: " +
                   TablePrinter::Num((1 - both.makespan / serial.makespan) * 100, 1) +
                   "% (paper: 26.5%)");
  Record("normalized_time", "x", 0, 1.0);
  Record("normalized_time", "x", 1, fused.makespan / serial.makespan);
  Record("normalized_time", "x", 2, both.makespan / serial.makespan);
  Summary("fusion_speedup", serial.makespan / fused.makespan);
  Summary("fusion_fission_improvement_pct",
          (1 - both.makespan / serial.makespan) * 100);
  Summary("serial_kernel_launches", static_cast<double>(serial.kernel_launches),
          obs::Direction::kTwoSided);
  Summary("fused_kernel_launches", static_cast<double>(fused.kernel_launches),
          obs::Direction::kLowerIsBetter);

  // The fusable block alone: SELECT + 6 JOINs (cluster 0), serial vs fused
  // kernel times.
  core::FusionOptions fusion_options;
  fusion_options.register_budget = 63;
  const core::FusionPlan fusion_plan = PlanFusion(plan.graph, fusion_options);
  core::OperatorCostModel cost_model;
  const sim::KernelCostModel& kernel_model = device.cost_model();
  const core::FusionCluster& block = fusion_plan.clusters[0];
  std::vector<core::RealizedSizes> member_sizes;
  double unfused_block = 0;
  for (core::NodeId id : block.nodes) {
    const core::OpNode& node = plan.graph.node(id);
    core::RealizedSizes sizes;
    sizes.input_rows = rows.at(node.inputs[0]);
    sizes.input_row_bytes = plan.graph.node(node.inputs[0]).schema.row_width_bytes();
    sizes.output_rows = rows.at(id);
    sizes.output_row_bytes = node.schema.row_width_bytes();
    if (node.inputs.size() > 1) {
      sizes.build_bytes = rows.at(node.inputs[1]) *
                          plan.graph.node(node.inputs[1]).schema.row_width_bytes();
    }
    member_sizes.push_back(sizes);
    for (const auto& p : cost_model.UnfusedProfiles(node, sizes)) {
      unfused_block += kernel_model.Cost(p).solo_duration;
    }
  }
  double fused_block = 0;
  for (const auto& p :
       cost_model.FusedProfiles(plan.graph, block, member_sizes)) {
    fused_block += kernel_model.Cost(p).solo_duration;
  }
  PrintSummaryLine("fused SELECT+6-JOIN block alone: " +
                   TablePrinter::Num(unfused_block / fused_block, 2) +
                   "x (paper: 3.18x)");
  Summary("fused_block_speedup", unfused_block / fused_block);

  // How much of the baseline is the unfusable SORT?
  double sort_time = 0;
  for (core::NodeId id : plan.graph.TopologicalOrder()) {
    const core::OpNode& node = plan.graph.node(id);
    if (node.is_source || node.desc.kind != relational::OpKind::kSort) continue;
    core::RealizedSizes sizes;
    sizes.input_rows = rows.at(node.inputs[0]);
    sizes.input_row_bytes = plan.graph.node(node.inputs[0]).schema.row_width_bytes();
    sizes.output_rows = rows.at(id);
    sizes.output_row_bytes = node.schema.row_width_bytes();
    for (const auto& p : cost_model.UnfusedProfiles(node, sizes)) {
      sort_time += kernel_model.Cost(p).solo_duration;
    }
  }
  PrintSummaryLine("SORT share of baseline compute: " +
                   TablePrinter::Num(100 * sort_time / serial.compute_time, 1) +
                   "% (paper: ~71% of total execution)");

  std::cout << "\nper-block compute breakdown (fused plan):\n";
  TablePrinter blocks({"Block", "Fused", "Compute", "Launches"});
  for (const auto& timing : fused.cluster_timings) {
    blocks.AddRow({timing.label, timing.fused ? "yes" : "no",
                   FormatTime(timing.compute), std::to_string(timing.launches)});
  }
  blocks.Print();
  return Finish();
}
