// Fig 11(a) — sensitivity to the number of fused kernels: fusing three
// back-to-back SELECTs vs fusing two, against their unfused chains
// (GPU computation only, as in the paper's figure).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  using core::Strategy;
  Init(argc, argv, "fig11a_kernel_count");
  PrintHeader("Fig 11(a): sensitivity to the number of kernels fused",
              "paper: fusing 3 SELECTs -> 2.35x, fusing 2 -> 1.80x");

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);

  TablePrinter table({"Elements", "fusion 3", "no fusion 3", "fusion 2",
                      "no fusion 2"});
  double gain3 = 0, gain2 = 0;
  int rows = 0;
  for (std::uint64_t n : PaperSweep()) {
    auto compute_gbs = [&](int k, Strategy strategy) {
      const std::vector<double> sels(static_cast<std::size_t>(k), 0.5);
      core::SelectChain chain = core::MakeSelectChain(n, sels);
      const auto report = RunChain(executor, chain, strategy);
      return ThroughputGBs(chain.input_bytes(), report.compute_time);
    };
    const double f3 = compute_gbs(3, Strategy::kFused);
    const double u3 = compute_gbs(3, Strategy::kSerial);
    const double f2 = compute_gbs(2, Strategy::kFused);
    const double u2 = compute_gbs(2, Strategy::kSerial);
    table.AddRow({Millions(n), TablePrinter::Num(f3, 2), TablePrinter::Num(u3, 2),
                  TablePrinter::Num(f2, 2), TablePrinter::Num(u2, 2)});
    gain3 += f3 / u3;
    gain2 += f2 / u2;
    Record("fusion3", "GB/s", static_cast<double>(n), f3);
    Record("no_fusion3", "GB/s", static_cast<double>(n), u3);
    Record("fusion2", "GB/s", static_cast<double>(n), f2);
    Record("no_fusion2", "GB/s", static_cast<double>(n), u2);
    ++rows;
  }
  table.Print();
  std::cout << "\n(GB/s of input, kernels only)\n";
  PrintSummaryLine("fusing 3 SELECTs: " + TablePrinter::Num(gain3 / rows, 2) +
                   "x over unfused (paper: 2.35x)");
  PrintSummaryLine("fusing 2 SELECTs: " + TablePrinter::Num(gain2 / rows, 2) +
                   "x over unfused (paper: 1.80x)");
  PrintSummaryLine("more kernels fused -> larger benefit (paper: same trend)");
  Summary("fusion3_gain", gain3 / rows);
  Summary("fusion2_gain", gain2 / rows);
  return Finish();
}
