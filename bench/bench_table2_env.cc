// Table II — the experiment environment. Prints the simulated machine's
// configuration so every other harness's numbers can be interpreted.
#include "bench/bench_util.h"
#include "sim/device_simulator.h"

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  Init(argc, argv, "table2_env");
  sim::DeviceSimulator device;
  const sim::DeviceSpec& spec = device.spec();
  PrintHeader("Table II: Experiment Environment", "paper Table II");

  TablePrinter table({"Component", "Paper testbed", "This simulation"});
  table.AddRow({"CPU", "2x quad-core Xeon E5520 @ 2.27GHz",
                std::to_string(spec.host_cores) + " cores / " +
                    std::to_string(spec.host_threads) + " threads (modeled)"});
  table.AddRow({"Host memory", "48 GB", FormatBytes(spec.host_mem_capacity_bytes)});
  table.AddRow({"GPU", "1x Tesla C2070 (6GB GDDR5)", spec.name});
  table.AddRow({"GPU SMs x cores",
                "14 x 32 @ 1.15 GHz",
                std::to_string(spec.sm_count) + " x " + std::to_string(spec.cores_per_sm) +
                    " @ " + TablePrinter::Num(spec.clock_ghz, 2) + " GHz"});
  table.AddRow({"GPU memory", "6 GB", FormatBytes(spec.mem_capacity_bytes)});
  table.AddRow({"GPU mem bandwidth", "144 GB/s peak",
                TablePrinter::Num(spec.mem_bandwidth_gbs, 0) + " GB/s peak, " +
                    TablePrinter::Num(spec.sustained_mem_bytes_per_second() / kGB, 1) +
                    " GB/s sustained"});
  table.AddRow({"Copy engines", "2 (H2D + D2H overlap compute)",
                std::to_string(spec.copy_engine_count)});
  table.AddRow({"PCIe", "2.0 x16 (8 GB/s theoretical)",
                "modeled, see bench_fig04b_pcie_bandwidth"});
  table.AddRow({"OS / toolchain", "Ubuntu 10.04, GCC 4.4.3, NVCC 4.0",
                "simulated device, C++20 host build"});
  table.Print();
  Summary("sm_count", static_cast<double>(spec.sm_count),
          obs::Direction::kTwoSided);
  Summary("copy_engines", static_cast<double>(spec.copy_engine_count),
          obs::Direction::kTwoSided);
  Summary("mem_bandwidth_gbs", spec.mem_bandwidth_gbs,
          obs::Direction::kTwoSided, "GB/s");
  return Finish();
}
