// Ablation — compression vs fusion for the PCIe bottleneck.
//
// The paper's related work notes that He et al. attack the same transfer
// bottleneck with data compression [25] and positions fusion as a compiler
// alternative. Both are implemented here, so this harness compares them —
// and shows they compose — on two back-to-back SELECTs over 200M elements
// drawn from TPC-H-like domains (quantity 1-50: 6-bit packable).
#include "bench/bench_util.h"
#include "common/random.h"
#include "relational/compression.h"

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  using core::Strategy;
  Init(argc, argv, "ablation_compression");
  PrintHeader("Ablation: compression vs kernel fusion for PCIe traffic",
              "related work [25]; both attack Fig 1's bottleneck");

  // Measure a realistic compression ratio on a TPC-H-like column.
  Rng rng(5);
  std::vector<std::int32_t> sample(1'000'000);
  for (auto& v : sample) v = static_cast<std::int32_t>(rng.UniformInt(1, 50));
  const relational::CompressedInt32 compressed =
      relational::CompressedInt32::Compress(sample);
  const double ratio = compressed.ratio();
  std::cout << "sample column (quantity 1-50): scheme "
            << ToString(compressed.scheme()) << ", ratio "
            << TablePrinter::Num(ratio, 2) << "x\n\n";

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  const std::uint64_t n = Scaled(200'000'000);
  core::SelectChain chain = core::MakeSelectChain(n, std::vector<double>{0.5, 0.5});

  // Baselines from the executor.
  const auto serial = RunChain(executor, chain, Strategy::kSerial);
  const auto fused = RunChain(executor, chain, Strategy::kFused);

  // Compression model: the input crosses PCIe compressed, a decompression
  // kernel (memory-bound streaming expand) runs before the query; results
  // return uncompressed. Decompression kernel: read compressed, write raw.
  auto with_compression = [&](const core::ExecutionReport& base) {
    const std::uint64_t raw = chain.input_bytes();
    const auto packed = static_cast<std::uint64_t>(static_cast<double>(raw) / ratio);
    const SimTime h2d_raw = device.pcie().TransferTime(
        raw, sim::HostMemoryKind::kPinned, sim::CopyDirection::kHostToDevice);
    const SimTime h2d_packed = device.pcie().TransferTime(
        packed, sim::HostMemoryKind::kPinned, sim::CopyDirection::kHostToDevice);
    sim::KernelProfile decompress;
    decompress.label = "decompress";
    decompress.elements = n;
    decompress.ops_per_element = 8.0;
    decompress.global_bytes_read = packed;
    decompress.global_bytes_written = raw;
    const SimTime expand = device.cost_model().Cost(decompress).solo_duration;
    return base.makespan - h2d_raw + h2d_packed + expand;
  };

  TablePrinter table({"Configuration", "Makespan", "vs serial"});
  double config_index = 0;
  auto add = [&](const char* name, SimTime t) {
    table.AddRow({name, FormatTime(t),
                  TablePrinter::Num(serial.makespan / t, 2) + "x"});
    Record("speedup_vs_serial", "x", config_index, serial.makespan / t);
    ++config_index;
  };
  add("serial, uncompressed", serial.makespan);
  add("serial + compression", with_compression(serial));
  add("fused, uncompressed", fused.makespan);
  add("fused + compression", with_compression(fused));
  table.Print();

  PrintSummaryLine("compression and fusion attack different copies of the "
                   "data: compression shrinks the *input* transfer, fusion "
                   "removes the *intermediate* traffic — composing them "
                   "stacks the wins, supporting the paper's claim that its "
                   "compiler approach is complementary to [25]");
  Summary("compression_ratio", ratio);
  Summary("fused_plus_compression_speedup",
          serial.makespan / with_compression(fused));
  return Finish();
}
