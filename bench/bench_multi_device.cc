// Multi-device scaling: fission segments sharded across a DeviceGroup.
//
// The paper evaluates fusion/fission on one Tesla C2070; this harness asks
// how the same fission-friendly SELECT chain scales when its segments are
// sharded across 1/2/4 modeled devices behind a shared PCIe root complex
// (DESIGN.md multi-device layer, docs/multi_device.md).
//
//   throughput_vs_devices    strong scaling: fixed input, 1/2/4 devices
//   speedup_vs_devices       same runs as a ratio to the 1-device makespan
//   weak_scaling_efficiency  fixed input *per device*, 1/2/4 devices
//   p95_latency_vs_devices   sharded serving through the QueryScheduler
//   qps_vs_devices           queries/sec of the same serving runs
//
// Everything gated comes from the deterministic simulation (virtual device
// clocks), so the committed baseline reproduces exactly at the same --scale.
// Headline gates: speedup_2_devices >= 1.7x, speedup_4_devices >= 3x.
#include <algorithm>
#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/multi_device.h"
#include "core/select_chain.h"
#include "server/query_scheduler.h"
#include "sim/device_group.h"

namespace {

using namespace kf;

constexpr int kDeviceCounts[] = {1, 2, 4};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  return values[lo] + (values[hi] - values[lo]) * (rank - static_cast<double>(lo));
}

// Timing-only makespan of the paper's 4-step 50% SELECT chain on `devices`
// devices (bytes-proportional split is identical to static on a homogeneous
// group; static keeps the baseline independent of the weight model).
double ChainMakespan(const core::SelectChain& chain, int devices) {
  sim::DeviceGroup group = sim::DeviceGroup::Homogeneous(devices);
  core::MultiDeviceExecutor executor(group);
  core::MultiDeviceOptions options;
  options.base.strategy = core::Strategy::kFusedFission;
  return executor.EstimateOnly(chain.graph, chain.expected_rows, options)
      .combined.makespan;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kf::bench;
  Init(argc, argv, "multi_device");
  PrintHeader("Multi-device scaling: sharded fission across a device group",
              "multi-device extension of paper Section IV (kernel fission)");

  const std::vector<double> selectivities{0.5, 0.5, 0.5, 0.5};

  // --- Strong scaling: fixed input, more devices. -------------------------
  const core::SelectChain chain =
      core::MakeSelectChain(Scaled(400'000'000), selectivities);
  TablePrinter strong({"devices", "makespan (s)", "GB/s", "speedup"});
  const double solo = ChainMakespan(chain, 1);
  double speedup2 = 0.0, speedup4 = 0.0;
  for (const int devices : kDeviceCounts) {
    const double makespan = devices == 1 ? solo : ChainMakespan(chain, devices);
    const double gbs = ThroughputGBs(chain.input_bytes(), makespan);
    const double speedup = solo / makespan;
    if (devices == 2) speedup2 = speedup;
    if (devices == 4) speedup4 = speedup;
    Record("throughput_vs_devices", "GB/s", devices, gbs);
    Record("speedup_vs_devices", "x", devices, speedup);
    strong.AddRow({std::to_string(devices), TablePrinter::Num(makespan, 4),
                   TablePrinter::Num(gbs, 2),
                   TablePrinter::Num(speedup, 2) + "x"});
  }
  strong.Print();

  // --- Weak scaling: fixed input per device. ------------------------------
  const std::uint64_t per_device = Scaled(100'000'000);
  const double weak_solo =
      ChainMakespan(core::MakeSelectChain(per_device, selectivities), 1);
  TablePrinter weak({"devices", "elements", "makespan (s)", "efficiency"});
  double weak_efficiency4 = 0.0;
  for (const int devices : kDeviceCounts) {
    const core::SelectChain weak_chain = core::MakeSelectChain(
        per_device * static_cast<std::uint64_t>(devices), selectivities);
    const double makespan = ChainMakespan(weak_chain, devices);
    const double efficiency = weak_solo / makespan;
    if (devices == 4) weak_efficiency4 = efficiency;
    Record("weak_scaling_efficiency", "", devices, efficiency);
    weak.AddRow({std::to_string(devices), Millions(weak_chain.elements),
                 TablePrinter::Num(makespan, 4),
                 TablePrinter::Num(efficiency, 3)});
  }
  weak.Print();

  // --- Sharded serving: p95 latency through the scheduler. ----------------
  // Functional queries (real rows through the staged kernels) served one
  // batch at a time with sharding opted in; deterministic via the single
  // paused worker and the per-device virtual clocks.
  const std::uint64_t serve_rows = Scaled(200'000);
  const relational::Table events = core::MakeUniformInt32Table(serve_rows);
  constexpr int kQueries = 12;
  TablePrinter serving({"devices", "queries", "sim qps", "p95 lat (s)"});
  for (const int devices : kDeviceCounts) {
    sim::DeviceGroup group = sim::DeviceGroup::Homogeneous(devices);
    server::SchedulerOptions options;
    options.worker_count = 1;
    options.start_paused = true;
    options.max_batch = 1;
    options.max_queue_depth = kQueries;
    server::QueryScheduler scheduler(group, options);

    const core::SelectChain serve_chain =
        core::MakeSelectChain(serve_rows, selectivities);
    server::QueryRequest request;
    request.graph = serve_chain.graph;
    request.sources.emplace(serve_chain.source, events);
    request.options.strategy = core::Strategy::kFused;
    request.allow_sharding = true;

    std::vector<std::future<server::QueryResult>> futures;
    for (int i = 0; i < kQueries; ++i) futures.push_back(scheduler.Submit(request));
    scheduler.Start();

    std::vector<double> latencies;
    latencies.reserve(futures.size());
    for (auto& future : futures) latencies.push_back(future.get().sim_latency());
    const double p95 = Percentile(latencies, 95.0);
    const double qps = static_cast<double>(kQueries) / scheduler.sim_clock();
    Record("p95_latency_vs_devices", "s", devices, p95);
    Record("qps_vs_devices", "queries/s", devices, qps);
    serving.AddRow({std::to_string(devices), std::to_string(kQueries),
                    TablePrinter::Num(qps, 1), TablePrinter::Num(p95, 5)});
  }
  serving.Print();

  Summary("speedup_2_devices", speedup2, obs::Direction::kHigherIsBetter, "x");
  Summary("speedup_4_devices", speedup4, obs::Direction::kHigherIsBetter, "x");
  Summary("weak_efficiency_4_devices", weak_efficiency4,
          obs::Direction::kHigherIsBetter, "");
  PrintSummaryLine("2 devices: " + TablePrinter::Num(speedup2, 2) +
                   "x one device (target >= 1.7x)");
  PrintSummaryLine("4 devices: " + TablePrinter::Num(speedup4, 2) +
                   "x one device (target >= 3x)");
  return Finish();
}
