// Adaptive cost-model calibration: estimate-error convergence and latency
// recovery under a miscalibrated believed device model (docs/adaptive.md).
//
// Two deployment mistakes are simulated against the true Tesla C2070:
//
//   pessimistic  the believed spec is 2x SLOWER than the true device
//                (halved compute rate, memory and PCIe bandwidth). A
//                deployment trusting it routes compute-heavy clusters to the
//                host CPU that the device would actually win.
//   optimistic   the believed spec is 2x FASTER than the true device. A
//                deployment trusting it keeps host-favored streaming queries
//                on the device and eats the PCIe crossing.
//
// Each scenario runs the same 64-query stream through two arms sharing the
// adaptive executor path: `frozen` (CalibrationOptions::frozen — the
// decision logic runs against the raw believed model forever, the
// uncalibrated executor) and `calibrated` (corrections learned from each
// run's timeline feed back into the next decision). Reported per scenario:
// per-query latency for both arms, the calibrator's estimate-error EWMA per
// query, and headline p95/qps recovery of calibrated over frozen.
//
// Figure benches pin calibration=off (EXPERIMENTS.md): this harness is the
// only one exercising the adaptive path, and it self-enforces its
// acceptance gates (>= 15% p95 recovery in both scenarios, error < 0.1
// within 32 queries) on top of the bench_compare baseline gate.
#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/calibration.h"
#include "core/select_chain.h"
#include "relational/expr.h"
#include "relational/operators.h"

namespace {

using namespace kf;

constexpr int kQueries = 64;
constexpr double kRecoveryGatePct = 15.0;
constexpr int kConvergenceGateQueries = 32;
constexpr double kConvergedError = 0.1;

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  return values[lo] + (values[hi] - values[lo]) * (rank - static_cast<double>(lo));
}

// The believed device/link: every throughput scaled by `factor` (2.0 =
// optimistic, 0.5 = pessimistic). The executor always simulates the TRUE
// device; only the calibrator's believed model is wrong.
sim::DeviceSpec BelievedSpec(double factor) {
  sim::DeviceSpec spec;
  spec.sustained_ipc_fraction *= factor;
  spec.mem_bandwidth_gbs *= factor;
  return spec;
}

sim::PcieConfig BelievedPcie(double factor) {
  sim::PcieConfig pcie;
  pcie.pinned_h2d_gbs *= factor;
  pcie.pinned_d2h_gbs *= factor;
  pcie.pageable_h2d_gbs *= factor;
  pcie.pageable_d2h_gbs *= factor;
  return pcie;
}

struct Workload {
  core::OpGraph graph;
  std::map<core::NodeId, std::uint64_t> row_counts;
};

// The pessimistic scenario's workload: a compute-heavy 8-step int32 SELECT
// chain the device truly wins — the 2x-slower belief makes the host look
// cheaper than it is.
Workload ComputeHeavyChain(std::uint64_t elements) {
  const core::SelectChain chain =
      core::MakeSelectChain(elements, std::vector<double>(8, 0.9));
  return Workload{chain.graph, chain.expected_rows};
}

// The optimistic scenario's workload: a bandwidth-bound SELECT over 8-byte
// int64 rows. Per element the device pays ~2.2 ns (PCIe in + out dominates),
// the host ~1.5 ns (ops-bound at host rates) — the host truly wins, but a
// 2x-faster believed device (~1.1 ns) keeps the query on the device.
Workload BandwidthBoundSelect(std::uint64_t elements) {
  using relational::DataType;
  using relational::Expr;
  using relational::OperatorDesc;
  Workload w;
  const core::NodeId source = w.graph.AddSource(
      "events", relational::Schema{{"k", DataType::kInt64}}, elements);
  const core::NodeId select = w.graph.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(0)), "sel"),
      source);
  w.row_counts[source] = elements;
  w.row_counts[select] = elements / 2;  // 50% selectivity
  return w;
}

struct ArmResult {
  std::vector<double> latencies;  // per query, seconds
  std::vector<double> errors;     // calibrator error EWMA after each query
  int converged_at = -1;          // first query with error < kConvergedError
  std::size_t host_placed = 0;    // clusters adaptively routed to the host
};

// Runs the query stream through one executor arm sharing one calibrator.
ArmResult RunArm(const Workload& workload, double believed_factor,
                 bool frozen) {
  core::CalibrationOptions calib_options;
  calib_options.frozen = frozen;
  core::CostModelCalibrator calib(BelievedSpec(believed_factor),
                                  BelievedPcie(believed_factor), calib_options);

  sim::DeviceSimulator device;  // the true device
  core::QueryExecutor executor(device);
  core::ExecutorOptions options;
  options.strategy = core::Strategy::kFused;
  options.calibration = &calib;

  ArmResult result;
  result.latencies.reserve(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    const core::ExecutionReport report =
        executor.EstimateOnly(workload.graph, workload.row_counts, options);
    result.latencies.push_back(report.makespan);
    result.errors.push_back(calib.error());
    result.host_placed += report.host_placed_clusters;
    // Converged when the estimate-error EWMA drops under the threshold — or
    // when the calibrated model flips the cluster to the host: from then on
    // the device model produces no observations, so the decision flip is the
    // strongest convergence signal available.
    if (result.converged_at < 0 && calib.observations() > 0 &&
        (calib.error() < kConvergedError ||
         report.host_placed_clusters > 0)) {
      result.converged_at = q + 1;  // 1-based query count
    }
  }
  return result;
}

struct Scenario {
  std::string name;
  double believed_factor;
  Workload workload;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace kf::bench;
  Init(argc, argv, "adaptive");
  PrintHeader("Adaptive cost-model calibration: convergence and recovery",
              "feedback-driven replanning extension (docs/adaptive.md)");

  // Workloads sit near the CPU/GPU placement crossover, where a 2x-wrong
  // believed model flips the decision the wrong way:
  //   pessimistic — a compute-heavy 8-step chain the device truly wins; the
  //                 2x-slower belief makes the host look cheaper.
  //   optimistic  — a bandwidth-bound int64 select the host truly wins; the
  //                 2x-faster belief keeps it on the device.
  std::vector<Scenario> scenarios;
  scenarios.push_back(
      {"pessimistic", 0.5, ComputeHeavyChain(Scaled(8'000'000))});
  scenarios.push_back(
      {"optimistic", 2.0, BandwidthBoundSelect(Scaled(4'000'000))});

  bool gates_ok = true;
  int worst_convergence = 0;
  TablePrinter table({"scenario", "frozen p95 (ms)", "calibrated p95 (ms)",
                      "p95 recovery", "qps recovery", "converged at"});
  for (const Scenario& scenario : scenarios) {
    const ArmResult frozen = RunArm(scenario.workload,
                                    scenario.believed_factor,
                                    /*frozen=*/true);
    const ArmResult calibrated = RunArm(scenario.workload,
                                        scenario.believed_factor,
                                        /*frozen=*/false);

    for (int q = 0; q < kQueries; ++q) {
      Record("latency_frozen_" + scenario.name, "s", q + 1,
             frozen.latencies[static_cast<std::size_t>(q)]);
      Record("latency_calibrated_" + scenario.name, "s", q + 1,
             calibrated.latencies[static_cast<std::size_t>(q)]);
      Record("estimate_error_" + scenario.name, "", q + 1,
             calibrated.errors[static_cast<std::size_t>(q)]);
    }

    const double frozen_p95 = Percentile(frozen.latencies, 95.0);
    const double calibrated_p95 = Percentile(calibrated.latencies, 95.0);
    const double p95_recovery =
        frozen_p95 > 0 ? (frozen_p95 - calibrated_p95) / frozen_p95 * 100.0 : 0.0;

    double frozen_total = 0.0, calibrated_total = 0.0;
    for (double latency : frozen.latencies) frozen_total += latency;
    for (double latency : calibrated.latencies) calibrated_total += latency;
    const double frozen_qps = kQueries / frozen_total;
    const double calibrated_qps = kQueries / calibrated_total;
    const double qps_recovery =
        (calibrated_qps - frozen_qps) / frozen_qps * 100.0;

    const int converged = calibrated.converged_at > 0 ? calibrated.converged_at
                                                      : kQueries + 1;
    worst_convergence = std::max(worst_convergence, converged);

    Summary("p95_recovery_pct_" + scenario.name, p95_recovery,
            obs::Direction::kHigherIsBetter, "%");
    Summary("qps_recovery_pct_" + scenario.name, qps_recovery,
            obs::Direction::kHigherIsBetter, "%");

    table.AddRow({scenario.name, TablePrinter::Num(frozen_p95 * 1e3, 3),
                  TablePrinter::Num(calibrated_p95 * 1e3, 3),
                  TablePrinter::Num(p95_recovery, 1) + "%",
                  TablePrinter::Num(qps_recovery, 1) + "%",
                  std::to_string(converged) + " queries"});

    if (p95_recovery < kRecoveryGatePct) {
      std::cerr << "GATE FAILED: " << scenario.name << " p95 recovery "
                << p95_recovery << "% < " << kRecoveryGatePct << "%\n";
      gates_ok = false;
    }
  }
  table.Print();

  Summary("convergence_queries", worst_convergence,
          obs::Direction::kLowerIsBetter, "queries");
  PrintSummaryLine("calibrated arm recovers >= " +
                   TablePrinter::Num(kRecoveryGatePct, 0) +
                   "% p95 in both scenarios (self-gated)");
  PrintSummaryLine("estimate error < " + TablePrinter::Num(kConvergedError, 1) +
                   " within " + std::to_string(worst_convergence) +
                   " queries (gate: <= " +
                   std::to_string(kConvergenceGateQueries) + ")");

  if (worst_convergence > kConvergenceGateQueries) {
    std::cerr << "GATE FAILED: convergence took " << worst_convergence
              << " queries > " << kConvergenceGateQueries << "\n";
    gates_ok = false;
  }

  const int finish = Finish();
  return gates_ok ? finish : 1;
}
