// Fig 16 — two back-to-back 50% SELECTs on large data: serial vs fusion vs
// fission vs fusion+fission.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  using core::Strategy;
  Init(argc, argv, "fig16_fusion_fission");
  PrintHeader("Fig 16: combining kernel fusion and kernel fission",
              "paper: fusion+fission +41.4% over serial, +31.3% over fusion "
              "only, +10.1% over fission only");

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);

  TablePrinter table({"Elements", "fusion+fission", "fission", "fusion", "serial"});
  double vs_serial = 0, vs_fusion = 0, vs_fission = 0;
  int rows = 0;
  for (std::uint64_t n : LargeSweep()) {
    core::SelectChain chain = core::MakeSelectChain(n, std::vector<double>{0.5, 0.5});
    std::map<Strategy, double> gbs;
    for (Strategy s : {Strategy::kSerial, Strategy::kFused, Strategy::kFission,
                       Strategy::kFusedFission}) {
      gbs[s] = ChainThroughput(RunChain(executor, chain, s), chain);
    }
    table.AddRow({Millions(n), TablePrinter::Num(gbs[Strategy::kFusedFission], 3),
                  TablePrinter::Num(gbs[Strategy::kFission], 3),
                  TablePrinter::Num(gbs[Strategy::kFused], 3),
                  TablePrinter::Num(gbs[Strategy::kSerial], 3)});
    vs_serial += gbs[Strategy::kFusedFission] / gbs[Strategy::kSerial];
    vs_fusion += gbs[Strategy::kFusedFission] / gbs[Strategy::kFused];
    vs_fission += gbs[Strategy::kFusedFission] / gbs[Strategy::kFission];
    Record("fusion_fission", "GB/s", static_cast<double>(n),
           gbs[Strategy::kFusedFission]);
    Record("fission", "GB/s", static_cast<double>(n), gbs[Strategy::kFission]);
    Record("fusion", "GB/s", static_cast<double>(n), gbs[Strategy::kFused]);
    Record("serial", "GB/s", static_cast<double>(n), gbs[Strategy::kSerial]);
    ++rows;
  }
  table.Print();
  std::cout << "\n(GB/s of input)\n";
  PrintSummaryLine("fusion+fission vs serial: +" +
                   TablePrinter::Num((vs_serial / rows - 1) * 100, 1) +
                   "% (paper: +41.4%)");
  PrintSummaryLine("fusion+fission vs fusion only: +" +
                   TablePrinter::Num((vs_fusion / rows - 1) * 100, 1) +
                   "% (paper: +31.3%)");
  PrintSummaryLine("fusion+fission vs fission only: +" +
                   TablePrinter::Num((vs_fission / rows - 1) * 100, 1) +
                   "% (paper: +10.1%)");
  Summary("vs_serial_pct", (vs_serial / rows - 1) * 100);
  Summary("vs_fusion_pct", (vs_fusion / rows - 1) * 100);
  Summary("vs_fission_pct", (vs_fission / rows - 1) * 100);
  return Finish();
}
