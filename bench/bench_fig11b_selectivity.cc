// Fig 11(b) — sensitivity to the selection rate: fused vs unfused
// back-to-back SELECTs at 10% and 90% per-step selectivity.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  using core::Strategy;
  Init(argc, argv, "fig11b_selectivity");
  PrintHeader("Fig 11(b): sensitivity to the data selection rate",
              "paper: the benefit of fusion grows with the fraction selected "
              "(more data movement to optimize away)");

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);

  TablePrinter table({"Elements", "fusion (10%)", "no fusion (10%)",
                      "fusion (90%)", "no fusion (90%)"});
  double gain10 = 0, gain90 = 0;
  int rows = 0;
  for (std::uint64_t n : PaperSweep()) {
    auto compute_gbs = [&](double sel, Strategy strategy) {
      core::SelectChain chain = core::MakeSelectChain(n, std::vector<double>{sel, sel});
      const auto report = RunChain(executor, chain, strategy);
      return ThroughputGBs(chain.input_bytes(), report.compute_time);
    };
    const double f10 = compute_gbs(0.10, Strategy::kFused);
    const double u10 = compute_gbs(0.10, Strategy::kSerial);
    const double f90 = compute_gbs(0.90, Strategy::kFused);
    const double u90 = compute_gbs(0.90, Strategy::kSerial);
    table.AddRow({Millions(n), TablePrinter::Num(f10, 2), TablePrinter::Num(u10, 2),
                  TablePrinter::Num(f90, 2), TablePrinter::Num(u90, 2)});
    gain10 += f10 / u10;
    gain90 += f90 / u90;
    Record("fusion_10pct", "GB/s", static_cast<double>(n), f10);
    Record("no_fusion_10pct", "GB/s", static_cast<double>(n), u10);
    Record("fusion_90pct", "GB/s", static_cast<double>(n), f90);
    Record("no_fusion_90pct", "GB/s", static_cast<double>(n), u90);
    ++rows;
  }
  table.Print();
  std::cout << "\n(GB/s of input, kernels only)\n";
  PrintSummaryLine("fusion gain at 10% selectivity: " +
                   TablePrinter::Num(gain10 / rows, 2) + "x");
  PrintSummaryLine("fusion gain at 90% selectivity: " +
                   TablePrinter::Num(gain90 / rows, 2) + "x");
  PrintSummaryLine("higher selection rate -> larger fusion benefit (paper: same)");
  Summary("fusion_gain_10pct", gain10 / rows);
  Summary("fusion_gain_90pct", gain90 / rows);
  return Finish();
}
