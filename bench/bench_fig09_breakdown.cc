// Fig 9 — execution-time breakdown (input/output transfer, intermediate
// round trip, GPU computation) for the three methods of Fig 8, normalized to
// the with-round-trip total of each size.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  using core::IntermediatePolicy;
  using core::Strategy;
  Init(argc, argv, "fig09_breakdown");
  PrintHeader("Fig 9: execution-time breakdown, two 50% SELECTs",
              "paper: PCIe dominates; the round trip is ~54% of the "
              "with-round-trip total and fusion eliminates it");

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);

  TablePrinter table({"Elements", "Method", "input/output", "round trip",
                      "compute", "total (norm)"});
  double rt_share_sum = 0;
  int sizes = 0;
  for (std::uint64_t n :
       {std::uint64_t{4'194'304}, std::uint64_t{205'520'896}, std::uint64_t{415'236'096}}) {
    core::SelectChain chain = core::MakeSelectChain(n, std::vector<double>{0.5, 0.5});
    const auto with_rt =
        RunChain(executor, chain, Strategy::kSerial,
                 IntermediatePolicy::kRoundTrip, 12, sim::HostMemoryKind::kPageable);
    const auto without_rt = RunChain(executor, chain, Strategy::kSerial,
                 core::IntermediatePolicy::kKeepOnDevice, 12,
                 sim::HostMemoryKind::kPageable);
    const auto fused = RunChain(executor, chain, Strategy::kFused,
                 core::IntermediatePolicy::kKeepOnDevice, 12,
                 sim::HostMemoryKind::kPageable);
    const double base = with_rt.makespan;
    auto add = [&](const char* name, const core::ExecutionReport& r) {
      table.AddRow({Millions(n), name, TablePrinter::Num(r.input_output_time / base, 3),
                    TablePrinter::Num(r.round_trip_time / base, 3),
                    TablePrinter::Num(r.compute_time / base, 3),
                    TablePrinter::Num(r.makespan / base, 3)});
      Record(std::string(name) == "w/ round trip"    ? "with_round_trip_norm"
             : std::string(name) == "w/o round trip" ? "without_round_trip_norm"
                                                     : "fused_norm",
             "x", static_cast<double>(n), r.makespan / base);
    };
    add("w/ round trip", with_rt);
    add("w/o round trip", without_rt);
    add("fused", fused);
    rt_share_sum += with_rt.round_trip_time / base;
    ++sizes;
  }
  table.Print();
  PrintSummaryLine("round trip share of with-round-trip total: " +
                   TablePrinter::Num(100 * rt_share_sum / sizes, 1) +
                   "% (paper: 54.0%)");
  PrintSummaryLine("input/output share identical across methods; fusion removes "
                   "the round trip entirely (paper: same)");
  Summary("round_trip_share_pct", 100 * rt_share_sum / sizes,
          obs::Direction::kTwoSided);
  return Finish();
}
