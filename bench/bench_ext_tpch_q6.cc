// Extension — TPC-H Q6, the fully-fusable contrast case to Figs 18(a)/(b).
//
// Q6 has no JOIN and no SORT: three range SELECTs, one ARITH, one global
// SUM. The planner fuses the whole query into ONE kernel. Comparing it with
// Q1 (one SORT fence) and Q21 (several fences) completes the paper's story
// with a twist the measurement exposes: being fully fusable does not by
// itself mean the biggest win — fusion pays off in proportion to the
// intermediate traffic it eliminates, and Q6 barely has any.
#include "bench/bench_util.h"
#include "core/plan_dot.h"
#include "tpch/q1.h"
#include "tpch/q21.h"
#include "tpch/q6.h"

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  using core::Strategy;
  Init(argc, argv, "ext_tpch_q6");
  PrintHeader("Extension: TPC-H Q6 — the fully fusable query",
              "upper bound of the Fig 18 fusable-fraction trend");

  tpch::TpchConfig config;
  config.order_count = std::max(500, static_cast<int>(20000 * Scale()));
  config.supplier_count = std::max(100, static_cast<int>(500 * Scale()));
  const tpch::TpchData data = MakeTpchData(config);
  const double factor = 6'000'000.0 / static_cast<double>(data.lineitem.row_count());

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  auto gain = [&](tpch::QueryPlan& plan) {
    const auto rows = ScaledRowCounts(plan.graph, plan.sources, factor);
    core::ExecutorOptions serial;
    serial.strategy = Strategy::kSerial;
    serial.fusion.register_budget = 63;
    core::ExecutorOptions fused = serial;
    fused.strategy = Strategy::kFused;
    const auto base = executor.EstimateOnly(plan.graph, rows, serial);
    const auto opt = executor.EstimateOnly(plan.graph, rows, fused);
    return std::pair{base.makespan / opt.makespan,
                     base.compute_time / opt.compute_time};
  };

  tpch::QueryPlan q6 = BuildQ6Plan(data);
  tpch::QueryPlan q1 = BuildQ1Plan(data);
  tpch::QueryPlan q21 = BuildQ21Plan(data);
  const auto [q6_total, q6_compute] = gain(q6);
  const auto [q1_total, q1_compute] = gain(q1);
  const auto [q21_total, q21_compute] = gain(q21);

  TablePrinter table({"Query", "Unfusable ops", "Fusion speedup (total)",
                      "Fusion speedup (kernels)"});
  table.AddRow({"Q6 (no fences)", "0", TablePrinter::Num(q6_total, 2) + "x",
                TablePrinter::Num(q6_compute, 2) + "x"});
  table.AddRow({"Q1 (1 sort, 1 unique)", "2", TablePrinter::Num(q1_total, 2) + "x",
                TablePrinter::Num(q1_compute, 2) + "x"});
  table.AddRow({"Q21 (2 sorts + agg fences)", "3+",
                TablePrinter::Num(q21_total, 2) + "x",
                TablePrinter::Num(q21_compute, 2) + "x"});
  table.Print();

  const core::FusionPlan q6_fusion = PlanFusion(q6.graph);
  PrintSummaryLine("Q6 fuses " + std::to_string(q6_fusion.clusters[0].nodes.size()) +
                   " operators into 1 kernel — yet its END-TO-END gain is the "
                   "smallest of the three");
  PrintSummaryLine("the instructive result: fusion's wins come from the "
                   "*intermediate* traffic it deletes. Q6's narrow slice is "
                   "already one transfer-bound pass, so there is little to "
                   "delete; Q1's wide 7-way table rebuild gives fusion the "
                   "most redundant bytes to eliminate. Full fusability is "
                   "necessary but not sufficient for big gains.");
  std::cout << "\nGraphviz of the fused Q6 plan (dot -Tpdf):\n"
            << ToDot(q6.graph, q6_fusion);
  Summary("q6_total_speedup", q6_total);
  Summary("q1_total_speedup", q1_total);
  Summary("q21_total_speedup", q21_total);
  Summary("q6_compute_speedup", q6_compute);
  return Finish();
}
