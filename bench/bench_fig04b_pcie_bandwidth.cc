// Fig 4(b) — PCIe 2.0 bandwidth: pinned/pageable x read/write vs size.
#include "bench/bench_util.h"
#include "sim/pcie_model.h"

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  using sim::CopyDirection;
  using sim::HostMemoryKind;
  Init(argc, argv, "fig04b_pcie_bandwidth");
  PrintHeader("Fig 4(b): PCIe 2.0 bandwidth measurement",
              "bandwidthTest-style curves; pinned > pageable, ramp-up with "
              "size, pinned advantage shrinking at large sizes");

  sim::PcieModel model;
  TablePrinter table({"Elements", "Bytes", "WR pinned", "WR paged", "RD pinned",
                      "RD paged"});
  for (std::uint64_t elements :
       {std::uint64_t{1'000'000}, std::uint64_t{10'000'000}, std::uint64_t{50'000'000},
        std::uint64_t{100'000'000}, std::uint64_t{200'000'000},
        std::uint64_t{400'000'000}}) {
    const std::uint64_t bytes = elements * 4;
    auto bw = [&](HostMemoryKind kind, CopyDirection dir, const char* series) {
      const double gbs = model.EffectiveBandwidth(bytes, kind, dir) / kGB;
      Record(series, "GB/s", static_cast<double>(elements), gbs);
      return TablePrinter::Num(gbs, 2);
    };
    table.AddRow(
        {Millions(elements), FormatBytes(bytes),
         bw(HostMemoryKind::kPinned, CopyDirection::kHostToDevice, "write_pinned"),
         bw(HostMemoryKind::kPageable, CopyDirection::kHostToDevice, "write_pageable"),
         bw(HostMemoryKind::kPinned, CopyDirection::kDeviceToHost, "read_pinned"),
         bw(HostMemoryKind::kPageable, CopyDirection::kDeviceToHost,
            "read_pageable")});
  }
  table.Print();

  const double small_adv =
      model.EffectiveBandwidth(MiB(64), HostMemoryKind::kPinned,
                               CopyDirection::kHostToDevice) /
      model.EffectiveBandwidth(MiB(64), HostMemoryKind::kPageable,
                               CopyDirection::kHostToDevice);
  const double big_adv =
      model.EffectiveBandwidth(1600'000'000ull, HostMemoryKind::kPinned,
                               CopyDirection::kHostToDevice) /
      model.EffectiveBandwidth(1600'000'000ull, HostMemoryKind::kPageable,
                               CopyDirection::kHostToDevice);
  PrintSummaryLine("all curves well below the 8 GB/s theoretical peak (paper: same)");
  PrintSummaryLine("pinned advantage " + TablePrinter::Num(small_adv, 2) +
                   "x at 64 MiB vs " + TablePrinter::Num(big_adv, 2) +
                   "x at 1.6 GB (paper: advantage reduces at large sizes)");
  Summary("pinned_advantage_64mib", small_adv);
  Summary("pinned_advantage_1600mb", big_adv);
  return Finish();
}
