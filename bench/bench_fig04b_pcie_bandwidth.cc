// Fig 4(b) — PCIe 2.0 bandwidth: pinned/pageable x read/write vs size.
#include "bench/bench_util.h"
#include "sim/pcie_model.h"

int main() {
  using namespace kf;
  using namespace kf::bench;
  using sim::CopyDirection;
  using sim::HostMemoryKind;
  PrintHeader("Fig 4(b): PCIe 2.0 bandwidth measurement",
              "bandwidthTest-style curves; pinned > pageable, ramp-up with "
              "size, pinned advantage shrinking at large sizes");

  sim::PcieModel model;
  TablePrinter table({"Elements", "Bytes", "WR pinned", "WR paged", "RD pinned",
                      "RD paged"});
  for (std::uint64_t elements :
       {std::uint64_t{1'000'000}, std::uint64_t{10'000'000}, std::uint64_t{50'000'000},
        std::uint64_t{100'000'000}, std::uint64_t{200'000'000},
        std::uint64_t{400'000'000}}) {
    const std::uint64_t bytes = elements * 4;
    auto bw = [&](HostMemoryKind kind, CopyDirection dir) {
      return TablePrinter::Num(model.EffectiveBandwidth(bytes, kind, dir) / kGB, 2);
    };
    table.AddRow({Millions(elements), FormatBytes(bytes),
                  bw(HostMemoryKind::kPinned, CopyDirection::kHostToDevice),
                  bw(HostMemoryKind::kPageable, CopyDirection::kHostToDevice),
                  bw(HostMemoryKind::kPinned, CopyDirection::kDeviceToHost),
                  bw(HostMemoryKind::kPageable, CopyDirection::kDeviceToHost)});
  }
  table.Print();

  const double small_adv =
      model.EffectiveBandwidth(MiB(64), HostMemoryKind::kPinned,
                               CopyDirection::kHostToDevice) /
      model.EffectiveBandwidth(MiB(64), HostMemoryKind::kPageable,
                               CopyDirection::kHostToDevice);
  const double big_adv =
      model.EffectiveBandwidth(1600'000'000ull, HostMemoryKind::kPinned,
                               CopyDirection::kHostToDevice) /
      model.EffectiveBandwidth(1600'000'000ull, HostMemoryKind::kPageable,
                               CopyDirection::kHostToDevice);
  PrintSummaryLine("all curves well below the 8 GB/s theoretical peak (paper: same)");
  PrintSummaryLine("pinned advantage " + TablePrinter::Num(small_adv, 2) +
                   "x at 64 MiB vs " + TablePrinter::Num(big_adv, 2) +
                   "x at 1.6 GB (paper: advantage reduces at large sizes)");
  return 0;
}
