// Wall-clock microbenchmarks (google-benchmark) of the host-side functional
// substrate on THIS machine: the staged SELECT kernels, fused vs unfused
// chains, the CPU comparator, and the fused row pipeline. These are sanity
// checks that the functional layer is itself reasonable code — the paper's
// figures come from the simulated device, not from these timings.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "core/fused_pipeline.h"
#include "core/select_chain.h"
#include "cpu/cpu_select.h"
#include "relational/compression.h"
#include "relational/staged_aggregate.h"
#include "relational/staged_join.h"
#include "relational/staged_kernel.h"
#include "relational/staged_sort.h"

namespace {

using namespace kf;

std::vector<std::int32_t> MakeData(std::size_t n) {
  Rng rng(7);
  std::vector<std::int32_t> data(n);
  for (auto& v : data) v = static_cast<std::int32_t>(rng.UniformInt(0, 1 << 30));
  return data;
}

// Canonical path: typed predicate + pooled workspace (zero warm-path heap
// allocations, branch-free vectorizable filter).
void BM_StagedSelect(benchmark::State& state) {
  const auto data = MakeData(static_cast<std::size_t>(state.range(0)));
  const auto pred = relational::TypedPredicate::Lt(1 << 29);
  BufferArena arena;
  auto ws = arena.Acquire<relational::StagedBuffers>();
  for (auto _ : state) {
    benchmark::DoNotOptimize(relational::StagedSelectInto(data, pred, 64, *ws));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 4);
}
BENCHMARK(BM_StagedSelect)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

// Legacy std::function entry point: per-element indirect call, output copied
// out of the pooled workspace. The gap to BM_StagedSelect is the cost of the
// type-erased predicate.
void BM_StagedSelectFallback(benchmark::State& state) {
  const auto data = MakeData(static_cast<std::size_t>(state.range(0)));
  const auto pred = [](std::int32_t v) { return v < (1 << 29); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(relational::StagedSelect(data, pred, 64));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 4);
}
BENCHMARK(BM_StagedSelectFallback)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_StagedSelectChainUnfused(benchmark::State& state) {
  const auto data = MakeData(1 << 20);
  const std::vector<relational::TypedPredicate> predicates = {
      relational::TypedPredicate::Lt(1 << 29),
      relational::TypedPredicate::Lt(1 << 28),
  };
  BufferArena arena;
  auto ws = arena.Acquire<relational::StagedBuffers>();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        relational::StagedSelectChainUnfusedInto(data, predicates, 64, *ws));
  }
}
BENCHMARK(BM_StagedSelectChainUnfused);

void BM_StagedSelectChainFused(benchmark::State& state) {
  const auto data = MakeData(1 << 20);
  const std::vector<relational::TypedPredicate> predicates = {
      relational::TypedPredicate::Lt(1 << 29),
      relational::TypedPredicate::Lt(1 << 28),
  };
  BufferArena arena;
  auto ws = arena.Acquire<relational::StagedBuffers>();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        relational::StagedSelectChainFusedInto(data, predicates, 64, *ws));
  }
}
BENCHMARK(BM_StagedSelectChainFused);

void BM_StagedSelectChainFusedFallback(benchmark::State& state) {
  const auto data = MakeData(1 << 20);
  const std::vector<relational::Int32Predicate> predicates = {
      [](std::int32_t v) { return v < (1 << 29); },
      [](std::int32_t v) { return v < (1 << 28); },
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        relational::StagedSelectChainFused(data, predicates, 64));
  }
}
BENCHMARK(BM_StagedSelectChainFusedFallback);

void BM_CpuSelect(benchmark::State& state) {
  const auto data = MakeData(1 << 20);
  ThreadPool pool(4);
  const auto pred = [](std::int32_t v) { return v < (1 << 29); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu::CpuSelect(data, pred, &pool));
  }
}
BENCHMARK(BM_CpuSelect);

void BM_FusedPipelineSelectChain(benchmark::State& state) {
  core::SelectChain chain =
      core::MakeSelectChain(1 << 18, std::vector<double>{0.5, 0.5});
  const relational::Table data = core::MakeUniformInt32Table(1 << 18);
  const core::FusionPlan plan = PlanFusion(chain.graph);
  auto lookup = [&](core::NodeId) -> const relational::Table& { return data; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ExecuteCluster(chain.graph, plan.clusters[0], lookup, 64));
  }
}
BENCHMARK(BM_FusedPipelineSelectChain);

void BM_StagedRadixSort(benchmark::State& state) {
  const auto data = MakeData(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(relational::StagedRadixSort(data, 64));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 4);
}
BENCHMARK(BM_StagedRadixSort)->Arg(1 << 16)->Arg(1 << 20);

void BM_StagedRadixArgsort(benchmark::State& state) {
  const auto data = MakeData(1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(relational::StagedRadixArgsort(data, 64));
  }
}
BENCHMARK(BM_StagedRadixArgsort);

void BM_StagedHashJoin(benchmark::State& state) {
  Rng rng(3);
  std::vector<relational::JoinPair> left(1 << 18), right(1 << 14);
  for (auto& p : left) {
    p.key = rng.UniformInt(0, 1 << 14);
    p.value = rng.UniformInt(0, 100);
  }
  for (auto& p : right) {
    p.key = rng.UniformInt(0, 1 << 14);
    p.value = rng.UniformInt(0, 100);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(relational::StagedHashJoin(left, right, 64));
  }
}
BENCHMARK(BM_StagedHashJoin);

void BM_StagedGroupedAggregate(benchmark::State& state) {
  Rng rng(4);
  std::vector<relational::AggregateInput> input(1 << 20);
  for (auto& in : input) {
    in.group = rng.UniformInt(0, 63);
    in.value = rng.UniformDouble(0.0, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(relational::StagedGroupedAggregate(input, 64));
  }
}
BENCHMARK(BM_StagedGroupedAggregate);

void BM_CompressBitPack(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::int32_t> values(1 << 20);
  for (auto& v : values) v = static_cast<std::int32_t>(rng.UniformInt(1, 50));
  for (auto _ : state) {
    benchmark::DoNotOptimize(relational::CompressedInt32::Compress(values));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size()) * 4);
}
BENCHMARK(BM_CompressBitPack);

void BM_DecompressBitPack(benchmark::State& state) {
  Rng rng(6);
  std::vector<std::int32_t> values(1 << 20);
  for (auto& v : values) v = static_cast<std::int32_t>(rng.UniformInt(1, 50));
  const auto compressed = relational::CompressedInt32::Compress(values);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compressed.Decompress());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size()) * 4);
}
BENCHMARK(BM_DecompressBitPack);

}  // namespace

// Accept the shared `--json <path>` flag by translating it into
// google-benchmark's own JSON reporter flags. The output follows
// google-benchmark's schema (wall-clock timings are machine-dependent and
// never regression-gated), so no kf-bench-v1 envelope is produced here.
int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  std::vector<std::string> translated;
  translated.reserve(args.size() + 1);
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json" && i + 1 < args.size()) {
      translated.push_back("--benchmark_out=" + args[i + 1]);
      translated.push_back("--benchmark_out_format=json");
      ++i;
    } else if (args[i] == "--scale" && i + 1 < args.size()) {
      ++i;  // accepted for interface parity; wall-clock sizes are fixed
    } else {
      translated.push_back(args[i]);
    }
  }
  std::vector<char*> bench_argv;
  bench_argv.reserve(translated.size());
  for (std::string& arg : translated) bench_argv.push_back(arg.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
