// Ablation — the fusion cost function's register budget (Section III-C:
// "fusing too many kernels ... will create increased register pressure").
// Sweeps the budget on a deep SELECT chain and on TPC-H Q1 and reports how
// the plan and the simulated runtime respond, including the spill regime
// when the budget is ignored.
#include "bench/bench_util.h"
#include "tpch/q1.h"

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  Init(argc, argv, "ablation_register_pressure");
  PrintHeader("Ablation: register-pressure budget in the fusion planner",
              "paper Section III-C cost function");

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);

  // Deep chain: 12 selects over 200M elements.
  const std::vector<double> sels(12, 0.9);
  core::SelectChain chain = core::MakeSelectChain(Scaled(200'000'000), sels);

  std::cout << "-- 12-deep SELECT chain, 200M elements --\n";
  TablePrinter table({"Budget", "Clusters", "Max cluster regs", "Compute time",
                      "Makespan"});
  for (int budget : {16, 24, 32, 48, 63, 96, 256}) {
    core::ExecutorOptions options;
    options.strategy = core::Strategy::kFused;
    options.fusion.register_budget = budget;
    const core::FusionPlan plan = PlanFusion(chain.graph, options.fusion);
    int max_regs = 0;
    for (const auto& cluster : plan.clusters) {
      max_regs = std::max(max_regs, cluster.register_estimate);
    }
    const auto report =
        executor.EstimateOnly(chain.graph, chain.expected_rows, options);
    table.AddRow({std::to_string(budget), std::to_string(plan.clusters.size()),
                  std::to_string(max_regs), FormatTime(report.compute_time),
                  FormatTime(report.makespan)});
    Record("chain_clusters", "clusters", static_cast<double>(budget),
           static_cast<double>(plan.clusters.size()));
    Record("chain_makespan", "s", static_cast<double>(budget), report.makespan);
  }
  table.Print();
  PrintSummaryLine("small budgets fragment the chain (more kernels, more "
                   "intermediate traffic); budgets past the occupancy knee "
                   "stop helping — and past 63 registers spills would begin");

  // Q1's SELECT+6-JOIN block needs a budget that admits all seven operators.
  tpch::TpchConfig config;
  config.order_count = std::max(500, static_cast<int>(4000 * Scale()));
  const tpch::TpchData data = MakeTpchData(config);
  tpch::QueryPlan plan = BuildQ1Plan(data);
  std::cout << "\n-- TPC-H Q1 plan --\n";
  TablePrinter q1_table({"Budget", "Clusters", "Biggest fused block"});
  std::size_t biggest_at_63 = 0;
  for (int budget : {16, 32, 48, 63, 96}) {
    core::FusionOptions options;
    options.register_budget = budget;
    const core::FusionPlan fusion = PlanFusion(plan.graph, options);
    std::size_t biggest = 0;
    for (const auto& cluster : fusion.clusters) {
      biggest = std::max(biggest, cluster.nodes.size());
    }
    q1_table.AddRow({std::to_string(budget), std::to_string(fusion.clusters.size()),
                     std::to_string(biggest)});
    Record("q1_biggest_block", "ops", static_cast<double>(budget),
           static_cast<double>(biggest));
    if (budget == 63) biggest_at_63 = biggest;
  }
  q1_table.Print();
  PrintSummaryLine("the paper's SELECT+6-JOIN fusion appears once the budget "
                   "covers the seven-operator block");
  Summary("q1_biggest_block_at_63", static_cast<double>(biggest_at_63),
          obs::Direction::kTwoSided, "ops");
  return Finish();
}
