// Ablation — pinned vs pageable host staging memory.
//
// The paper notes (Section IV-B) that "for performance reasons, one has to
// use pinned memory to transfer data" for kernel fission, and that this is
// its main drawback (pinning steals memory from the rest of the host). This
// harness quantifies the pinned advantage for both the serial and the
// fission schedules on two back-to-back 50% SELECTs.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  using core::Strategy;
  Init(argc, argv, "ablation_pinned_memory");
  PrintHeader("Ablation: pinned vs pageable staging memory",
              "paper Section IV-B — fission requires pinned buffers");

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);

  TablePrinter table({"Elements", "Strategy", "pinned", "pageable",
                      "pinned gain"});
  double fission_gain_large = 0;
  for (std::uint64_t n : {Scaled(100'000'000), Scaled(1'000'000'000)}) {
    core::SelectChain chain = core::MakeSelectChain(n, std::vector<double>{0.5, 0.5});
    for (Strategy s : {Strategy::kSerial, Strategy::kFusedFission}) {
      const auto pinned = RunChain(executor, chain, s,
                                   core::IntermediatePolicy::kKeepOnDevice, 12,
                                   sim::HostMemoryKind::kPinned);
      const auto pageable = RunChain(executor, chain, s,
                                     core::IntermediatePolicy::kKeepOnDevice, 12,
                                     sim::HostMemoryKind::kPageable);
      table.AddRow({Millions(n), ToString(s),
                    FormatGBs(pinned.ThroughputGBs(chain.input_bytes())),
                    FormatGBs(pageable.ThroughputGBs(chain.input_bytes())),
                    TablePrinter::Num(pageable.makespan / pinned.makespan, 2) + "x"});
      Record(std::string("pinned_gain_") + ToString(s), "x",
             static_cast<double>(n), pageable.makespan / pinned.makespan);
      if (s == Strategy::kFusedFission) {
        fission_gain_large = pageable.makespan / pinned.makespan;
      }
    }
  }
  table.Print();
  PrintSummaryLine("fission's pipeline is bounded by the H2D transfer, so the "
                   "pinned bandwidth advantage translates almost 1:1 into "
                   "end-to-end throughput — the paper's 'has to use pinned "
                   "memory' in numbers");
  PrintSummaryLine("the cost is outside the model: pinned pages are stolen "
                   "from the host OS (the paper's stated drawback)");
  Summary("fission_pinned_gain", fission_gain_large);
  return Finish();
}
