// Tracing overhead: identical seeded serving runs with and without a Tracer.
//
// The workload is the acceptance scenario from docs/observability.md: four
// concurrent dashboard clients over a shared relation, a seeded fault
// injector (copy/kernel faults and stream stalls) plus silent corruption
// with full verification, served deterministically (single worker, paused
// start, round-robin submission). The run executes twice — tracer off, then
// tracer on — and the simulated latency distribution must be IDENTICAL:
// tracing observes the virtual clock, it never advances it. The gated
// summaries pin that invariant plus the structure of the traced output:
//
//   sim_p95_overhead_ratio   traced p95 sim latency / untraced (== 1.0; the
//                            binary itself also fails when > 1.03)
//   min_query_coverage       worst-case root-span coverage of each query's
//                            submit->complete interval (>= 0.95 acceptance)
//   spans_per_query          mean span count per finished query tree
//
// Wall-clock overhead is printed for context but never gated — wall time is
// machine-dependent and the simulated numbers are the contract.
#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "obs/tracer.h"
#include "server/query_scheduler.h"
#include "sim/fault_injector.h"

namespace {

using namespace kf;
using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::Schema;

constexpr int kClients = 4;
constexpr int kRounds = 6;

core::OpGraph ClientQuery(std::uint64_t rows, int client) {
  core::OpGraph g;
  const core::NodeId src =
      g.AddSource("events", Schema{{"v", DataType::kInt32}}, rows);
  const std::int64_t hi = (std::int64_t{1} << 30) + client * 1024;
  const std::int64_t lo = (std::int64_t{1} << 29) - client * 4096;
  const core::NodeId first = g.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(hi)),
                           "recent" + std::to_string(client)),
      src);
  g.AddOperator(
      OperatorDesc::Select(Expr::Ge(Expr::FieldRef(0), Expr::Lit(lo)),
                           "hot" + std::to_string(client)),
      first);
  return g;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

struct RunResult {
  std::vector<double> sim_latencies;
  std::vector<std::uint64_t> trace_query_ids;
  double wall_seconds = 0.0;
  std::size_t failed = 0;
};

// One deterministic serving pass over the seeded fault workload. `tracer`
// nullptr is the baseline; non-null records every query's span tree. The
// injector is constructed fresh per pass: its draw stream is stateful, so
// sharing one instance would give the two passes different fault sequences.
RunResult ServeWorkload(const relational::Table& events, std::uint64_t rows,
                        const sim::FaultConfig& fault_config,
                        obs::Tracer* tracer) {
  sim::DeviceSimulator device;
  obs::MetricsRegistry metrics;  // private: keep both passes symmetric
  const sim::FaultInjector injector(fault_config);

  server::SchedulerOptions options;
  options.worker_count = 1;
  options.start_paused = true;
  options.max_batch = kClients;
  options.max_queue_depth = kClients * kRounds;
  options.metrics = &metrics;
  options.fault_injector = &injector;
  options.integrity.verify_transfers = true;
  options.integrity.audit_fraction = 1.0;
  options.tracer = tracer;
  server::QueryScheduler scheduler(device, options);

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::future<server::QueryResult>> futures;
  for (int round = 0; round < kRounds; ++round) {
    for (int c = 0; c < kClients; ++c) {
      server::QueryRequest request;
      request.graph = ClientQuery(rows, c);
      request.sources.emplace(request.graph.Sources()[0], events);
      request.options.strategy = core::Strategy::kFused;
      request.merge_class = "dashboard";
      futures.push_back(scheduler.Submit(std::move(request)));
    }
  }
  scheduler.Start();

  RunResult result;
  for (auto& future : futures) {
    try {
      const server::QueryResult r = future.get();
      result.sim_latencies.push_back(r.sim_latency());
      result.trace_query_ids.push_back(r.trace_query_id);
    } catch (const kf::Error&) {
      ++result.failed;  // typed failure under faults: excluded from latency
    }
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kf::bench;
  Init(argc, argv, "tracing");
  PrintHeader("Tracing overhead: traced vs untraced seeded serving runs",
              "observability layer; the simulated numbers must not move when "
              "the tracer is attached");

  const std::uint64_t rows = Scaled(200'000);
  const relational::Table events = core::MakeUniformInt32Table(rows);

  sim::FaultConfig fault_config;
  fault_config.copy_fault_rate = 0.10;
  fault_config.kernel_fault_rate = 0.10;
  fault_config.stall_rate = 0.10;
  fault_config.corrupt_h2d_rate = 0.01;
  fault_config.corrupt_d2h_rate = 0.01;
  fault_config.seed = 20260808;

  const RunResult untraced = ServeWorkload(events, rows, fault_config, nullptr);
  obs::Tracer tracer;
  const RunResult traced = ServeWorkload(events, rows, fault_config, &tracer);

  const double p95_untraced = Percentile(untraced.sim_latencies, 95.0);
  const double p95_traced = Percentile(traced.sim_latencies, 95.0);
  const double p95_ratio = p95_untraced > 0.0 ? p95_traced / p95_untraced : 1.0;
  const double wall_ratio = untraced.wall_seconds > 0.0
                                ? traced.wall_seconds / untraced.wall_seconds
                                : 1.0;

  // Structure of the traced output: every finished query must have a span
  // tree whose root covers its submit->complete interval.
  double min_coverage = 1.0;
  std::size_t total_spans = 0;
  std::size_t trees = 0;
  std::size_t annotated_spans = 0;
  for (std::size_t i = 0; i < traced.trace_query_ids.size(); ++i) {
    const obs::QueryTrace trace = tracer.Snapshot(traced.trace_query_ids[i]);
    if (trace.empty()) {
      min_coverage = 0.0;
      continue;
    }
    ++trees;
    total_spans += trace.spans.size();
    for (const obs::Span& span : trace.spans) {
      if (!span.annotations.empty()) ++annotated_spans;
    }
    const obs::Span& root = trace.spans.front();
    const double latency = traced.sim_latencies[i];
    const double covered = root.sim_end - root.sim_start;
    min_coverage =
        std::min(min_coverage, latency > 0.0 ? covered / latency : 1.0);
  }
  const double spans_per_query =
      trees > 0 ? static_cast<double>(total_spans) / static_cast<double>(trees)
                : 0.0;
  const std::string session = obs::ToSessionTrace(tracer);

  TablePrinter table({"run", "queries", "p95 sim lat (s)", "wall (s)"});
  table.AddRow({"untraced", std::to_string(untraced.sim_latencies.size()),
                TablePrinter::Num(p95_untraced, 6),
                TablePrinter::Num(untraced.wall_seconds, 3)});
  table.AddRow({"traced", std::to_string(traced.sim_latencies.size()),
                TablePrinter::Num(p95_traced, 6),
                TablePrinter::Num(traced.wall_seconds, 3)});
  table.Print();

  Summary("sim_p95_overhead_ratio", p95_ratio, obs::Direction::kLowerIsBetter,
          "x");
  Summary("min_query_coverage", min_coverage, obs::Direction::kHigherIsBetter,
          "");
  Summary("spans_per_query", spans_per_query, obs::Direction::kHigherIsBetter,
          "");

  PrintSummaryLine("p95 sim-latency overhead: " + TablePrinter::Num(p95_ratio, 4) +
                   "x (must stay <= 1.03)");
  PrintSummaryLine("wall overhead (ungated): " +
                   TablePrinter::Num(wall_ratio, 3) + "x");
  PrintSummaryLine("worst root-span coverage: " +
                   TablePrinter::Num(min_coverage * 100.0, 1) +
                   "% of submit->complete (target >= 95%)");
  PrintSummaryLine("session trace: " + std::to_string(session.size()) +
                   " bytes, " + std::to_string(trees) + " query trees, " +
                   std::to_string(annotated_spans) + " annotated spans");

  if (p95_ratio > 1.03) {
    std::cerr << "FAIL: tracer changed simulated p95 latency by more than 3%\n";
    return 1;
  }
  if (min_coverage < 0.95) {
    std::cerr << "FAIL: root-span coverage below 95% of query latency\n";
    return 1;
  }
  return Finish();
}
