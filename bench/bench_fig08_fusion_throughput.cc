// Fig 8 — two back-to-back 50% SELECTs: (a) end-to-end throughput of
// with-round-trip / without-round-trip / fused; (b) compute-only comparison.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  using core::IntermediatePolicy;
  using core::Strategy;
  Init(argc, argv, "fig08_fusion_throughput");
  PrintHeader("Fig 8: kernel fusion on back-to-back SELECTs",
              "paper: fused +49.9% over with-round-trip, +6.2% over "
              "without-round-trip; compute-only +79.9%");

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);

  TablePrinter table({"Elements", "w/ round trip", "w/o round trip", "fused",
                      "fused/wRT", "fused/woRT"});
  double gain_wrt = 0, gain_wort = 0, compute_gain = 0;
  int rows = 0;
  for (std::uint64_t n : PaperSweep()) {
    core::SelectChain chain = core::MakeSelectChain(n, std::vector<double>{0.5, 0.5});
    const auto with_rt =
        RunChain(executor, chain, Strategy::kSerial,
                 IntermediatePolicy::kRoundTrip, 12, sim::HostMemoryKind::kPageable);
    const auto without_rt = RunChain(executor, chain, Strategy::kSerial,
                 core::IntermediatePolicy::kKeepOnDevice, 12,
                 sim::HostMemoryKind::kPageable);
    const auto fused = RunChain(executor, chain, Strategy::kFused,
                 core::IntermediatePolicy::kKeepOnDevice, 12,
                 sim::HostMemoryKind::kPageable);
    const double t_wrt = ChainThroughput(with_rt, chain);
    const double t_wort = ChainThroughput(without_rt, chain);
    const double t_fused = ChainThroughput(fused, chain);
    Record("with_round_trip", "GB/s", static_cast<double>(n), t_wrt);
    Record("without_round_trip", "GB/s", static_cast<double>(n), t_wort);
    Record("fused", "GB/s", static_cast<double>(n), t_fused);
    table.AddRow({Millions(n), TablePrinter::Num(t_wrt, 3),
                  TablePrinter::Num(t_wort, 3), TablePrinter::Num(t_fused, 3),
                  TablePrinter::Num(t_fused / t_wrt, 2) + "x",
                  TablePrinter::Num(t_fused / t_wort, 3) + "x"});
    gain_wrt += t_fused / t_wrt;
    gain_wort += t_fused / t_wort;
    compute_gain += without_rt.compute_time / fused.compute_time;
    ++rows;
  }
  table.Print();
  std::cout << "\n(throughput in GB/s of input; PCIe included)\n";
  PrintSummaryLine("fused vs with-round-trip: avg +" +
                   TablePrinter::Num((gain_wrt / rows - 1) * 100, 1) +
                   "% (paper: +49.9%)");
  PrintSummaryLine("fused vs without-round-trip: avg +" +
                   TablePrinter::Num((gain_wort / rows - 1) * 100, 1) +
                   "% (paper: +6.2%)");
  PrintSummaryLine("Fig 8(b) compute-only: fused " +
                   TablePrinter::Num((compute_gain / rows - 1) * 100, 1) +
                   "% better (paper: +79.9%)");
  Summary("fused_vs_with_round_trip_pct", (gain_wrt / rows - 1) * 100);
  Summary("fused_vs_without_round_trip_pct", (gain_wort / rows - 1) * 100);
  Summary("compute_only_gain_pct", (compute_gain / rows - 1) * 100);
  return Finish();
}
