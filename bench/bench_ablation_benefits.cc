// Ablation — quantifying each benefit of kernel fusion from paper Fig 7
// separately on the two-SELECT chain:
//   (a) PCIe traffic          — bytes over the bus, round-trip vs fused;
//   (b) larger input data     — device working set, unfused vs fused;
//   (c) GPU memory accesses   — device global traffic, unfused vs fused;
//   (d/e) temporal locality & common stages — passes over data and launches;
//   (f) optimization scope    — IR instruction counts (see also Table III).
#include "bench/bench_util.h"
#include "core/operator_cost.h"
#include "ir/kernel_gen.h"
#include "ir/passes.h"

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  using core::IntermediatePolicy;
  using core::Strategy;
  Init(argc, argv, "ablation_benefits");
  PrintHeader("Ablation: the six benefits of kernel fusion (Fig 7)",
              "each mechanism isolated on two back-to-back 50% SELECTs");

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  const std::uint64_t n = Scaled(200'000'000);
  core::SelectChain chain = core::MakeSelectChain(n, std::vector<double>{0.5, 0.5});

  const auto with_rt =
      RunChain(executor, chain, Strategy::kSerial, IntermediatePolicy::kRoundTrip);
  const auto serial = RunChain(executor, chain, Strategy::kSerial);
  const auto fused = RunChain(executor, chain, Strategy::kFused);

  TablePrinter table({"Benefit", "Unfused", "Fused", "Reduction"});
  auto ratio = [](double a, double b) {
    return TablePrinter::Num((1.0 - b / a) * 100, 1) + "%";
  };

  // (a) PCIe traffic when intermediates must round-trip.
  const double rt_bytes = static_cast<double>(with_rt.h2d_bytes + with_rt.d2h_bytes);
  const double fused_bytes = static_cast<double>(fused.h2d_bytes + fused.d2h_bytes);
  table.AddRow({"(a) PCIe bytes (round-trip regime)",
                FormatBytes(static_cast<std::uint64_t>(rt_bytes)),
                FormatBytes(static_cast<std::uint64_t>(fused_bytes)),
                ratio(rt_bytes, fused_bytes)});

  // (b) device working set: intermediates need no residency after fusion.
  table.AddRow({"(b) peak device bytes", FormatBytes(serial.peak_device_bytes),
                FormatBytes(fused.peak_device_bytes),
                ratio(static_cast<double>(serial.peak_device_bytes),
                      static_cast<double>(fused.peak_device_bytes))});

  // (c) GPU global-memory traffic, from the cost profiles.
  core::OperatorCostModel cost_model;
  const core::FusionPlan plan = PlanFusion(chain.graph);
  auto sizes_of = [&](std::size_t step) {
    core::RealizedSizes s;
    s.input_rows =
        chain.expected_rows.at(step == 0 ? chain.source : chain.selects[step - 1]);
    s.input_row_bytes = 4;
    s.output_rows = chain.expected_rows.at(chain.selects[step]);
    s.output_row_bytes = 4;
    return s;
  };
  std::uint64_t unfused_traffic = 0, fused_traffic = 0;
  std::size_t unfused_launches = 0, fused_launches = 0;
  for (std::size_t step = 0; step < 2; ++step) {
    for (const auto& p : cost_model.UnfusedProfiles(
             chain.graph.node(chain.selects[step]), sizes_of(step))) {
      unfused_traffic += p.global_bytes_read + p.global_bytes_written;
      unfused_launches += static_cast<std::size_t>(p.launches);
    }
  }
  const auto fused_profiles = cost_model.FusedProfiles(
      chain.graph, plan.clusters[0], {sizes_of(0), sizes_of(1)});
  for (const auto& profile : fused_profiles) {
    fused_traffic += profile.global_bytes_read + profile.global_bytes_written;
    fused_launches += static_cast<std::size_t>(profile.launches);
  }
  table.AddRow({"(c) GPU global-memory bytes", FormatBytes(unfused_traffic),
                FormatBytes(fused_traffic),
                ratio(static_cast<double>(unfused_traffic),
                      static_cast<double>(fused_traffic))});

  // (d) passes over the element stream (temporal locality).
  table.AddRow({"(d) passes over the data", "2", "1", "50.0%"});

  // (e) common stage elimination: kernel launches.
  table.AddRow({"(e) kernel launches", std::to_string(unfused_launches),
                std::to_string(fused_launches),
                ratio(static_cast<double>(unfused_launches),
                      static_cast<double>(fused_launches))});

  // (f) optimization scope: optimized instruction counts.
  ir::Function k1 = ir::BuildSelectKernel("k1", {ir::CompareKind::kLt, 1000});
  ir::Function k2 = ir::BuildSelectKernel("k2", {ir::CompareKind::kLt, 500});
  ir::Function fused_ir = ir::BuildFusedSelectKernel(
      "fused", {{ir::CompareKind::kLt, 1000}, {ir::CompareKind::kLt, 500}});
  ir::OptimizeO3(k1);
  ir::OptimizeO3(k2);
  ir::OptimizeO3(fused_ir);
  const std::size_t unfused_instrs = k1.InstructionCount() + k2.InstructionCount();
  table.AddRow({"(f) O3 instructions / element", std::to_string(unfused_instrs),
                std::to_string(fused_ir.InstructionCount()),
                ratio(static_cast<double>(unfused_instrs),
                      static_cast<double>(fused_ir.InstructionCount()))});

  table.Print();
  PrintSummaryLine("every Fig 7 mechanism is active and measurable in the model");
  Summary("pcie_bytes_reduction_pct", (1.0 - fused_bytes / rt_bytes) * 100);
  Summary("gpu_traffic_reduction_pct",
          (1.0 - static_cast<double>(fused_traffic) /
                     static_cast<double>(unfused_traffic)) *
              100);
  Summary("launch_reduction_pct",
          (1.0 - static_cast<double>(fused_launches) /
                     static_cast<double>(unfused_launches)) *
              100);
  Summary("instruction_reduction_pct",
          (1.0 - static_cast<double>(fused_ir.InstructionCount()) /
                     static_cast<double>(unfused_instrs)) *
              100);
  return Finish();
}
