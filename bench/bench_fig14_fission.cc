// Fig 14 — kernel fission on one SELECT over data sets larger than device
// memory: the pipelined 3-stream schedule vs serial segmented execution.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  using core::Strategy;
  Init(argc, argv, "fig14_fission");
  PrintHeader("Fig 14: kernel fission, one 50% SELECT, data >> GPU memory",
              "paper: fission throughput +36.9% over the serial baseline");

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);

  TablePrinter table({"Elements", "Input", "fission", "no fission", "gain"});
  double gain_sum = 0;
  int rows = 0;
  for (std::uint64_t n : LargeSweep()) {
    core::SelectChain chain = core::MakeSelectChain(n, std::vector<double>{0.5});
    const auto serial = RunChain(executor, chain, Strategy::kSerial);
    const auto fission = RunChain(executor, chain, Strategy::kFission);
    const double t_serial = ChainThroughput(serial, chain);
    const double t_fission = ChainThroughput(fission, chain);
    Record("fission", "GB/s", static_cast<double>(n), t_fission);
    Record("no_fission", "GB/s", static_cast<double>(n), t_serial);
    table.AddRow({Millions(n), FormatBytes(chain.input_bytes()),
                  TablePrinter::Num(t_fission, 3), TablePrinter::Num(t_serial, 3),
                  TablePrinter::Num((t_fission / t_serial - 1) * 100, 1) + "%"});
    gain_sum += t_fission / t_serial;
    ++rows;
  }
  table.Print();
  std::cout << "\n(GB/s of input; every run streams through the 6 GB device)\n";
  PrintSummaryLine("average fission gain: +" +
                   TablePrinter::Num((gain_sum / rows - 1) * 100, 1) +
                   "% (paper: +36.9%)");
  PrintSummaryLine("execution time approaches max(H2D, compute, D2H) = the "
                   "input transfer, as the paper predicts for SELECT");
  Summary("fission_gain_pct", (gain_sum / rows - 1) * 100);
  return Finish();
}
