// Integrity: the cost of catching silent corruption, and the detection it
// buys. Three verification arms serve the same query mix while device
// commands corrupt bytes with probability r:
//
//   off        no verification (the baseline — corruption sails through)
//   checksum   checksummed transfers (uploads digested, downloads verified)
//   audit      checksums + 100% sampled host audit of cluster outputs
//
// All gated numbers come from the virtual device clock (single worker,
// paused start, solo batches, fixed corruption seed), so the committed
// baseline reproduces exactly at the same --scale.
//
//   p95 latency per arm vs rate   what verification costs as corruption rises
//   undetected per arm vs rate    what NOT verifying lets through
//   checksum_overhead_p95         checksum-arm p95 / off-arm p95 at r=0
//                                 (the always-on tax; target <= 1.05)
//   detection_rate_at_5pct        detected/corrupted in the audit arm at 5%
//   completion_rate_at_5pct       audit-arm completed fraction at 5%
#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "server/query_scheduler.h"
#include "sim/fault_injector.h"

namespace {

using namespace kf;
using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::Schema;

// One query: a two-step select chain over the shared relation, thresholds
// varied per query so plans differ structurally.
core::OpGraph Query(std::uint64_t rows, int index) {
  core::OpGraph g;
  const core::NodeId src =
      g.AddSource("events", Schema{{"v", DataType::kInt32}}, rows);
  const std::int64_t hi = (std::int64_t{1} << 30) + index * 2048;
  const std::int64_t lo = (std::int64_t{1} << 29) - index * 1024;
  const core::NodeId first = g.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(hi)),
                           "recent" + std::to_string(index)),
      src);
  g.AddOperator(OperatorDesc::Select(
                    Expr::Ge(Expr::FieldRef(0), Expr::Lit(lo)),
                    "hot" + std::to_string(index)),
                first);
  return g;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

struct Arm {
  const char* name;
  core::IntegrityOptions integrity;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace kf::bench;
  Init(argc, argv, "integrity");
  PrintHeader("Integrity: checksummed serving under silent corruption",
              "data-integrity extension of the stream-pool runtime; threat "
              "model in docs/integrity.md");

  const std::uint64_t rows = Scaled(500'000);
  const relational::Table events = core::MakeUniformInt32Table(rows);
  constexpr int kQueries = 40;

  sim::DeviceSimulator device;

  core::IntegrityOptions checksum_only;
  checksum_only.verify_transfers = true;
  core::IntegrityOptions full_audit;
  full_audit.verify_transfers = true;
  full_audit.audit_fraction = 1.0;
  const Arm arms[] = {{"off", {}},
                      {"checksum", checksum_only},
                      {"audit", full_audit}};

  TablePrinter table({"arm", "corrupt rate", "completed", "corrupted",
                      "detected", "undetected", "p95 lat (s)"});

  double p95_off_clean = 0.0, p95_checksum_clean = 0.0;
  double detection_at_5 = 0.0, completion_at_5 = 0.0;
  for (const Arm& arm : arms) {
    for (const double rate : {0.0, 0.01, 0.05}) {
      sim::FaultConfig config;
      config.seed = 2026;
      config.corrupt_h2d_rate = rate;
      config.corrupt_d2h_rate = rate;
      config.corrupt_kernel_rate = rate;
      sim::FaultInjector injector(config);

      server::SchedulerOptions options;
      options.worker_count = 1;  // deterministic batch order
      options.start_paused = true;
      options.max_batch = 1;  // solo batches: per-query outcomes stay pinned
      options.max_queue_depth = kQueries;
      options.fault_injector = &injector;
      options.integrity = arm.integrity;
      server::QueryScheduler scheduler(device, options);

      std::vector<std::future<server::QueryResult>> futures;
      for (int i = 0; i < kQueries; ++i) {
        server::QueryRequest request;
        request.graph = Query(rows, i);
        request.sources.emplace(request.graph.Sources()[0], events);
        request.options.strategy = core::Strategy::kFusedFission;
        request.options.fission_segments = 8;
        futures.push_back(scheduler.Submit(std::move(request)));
      }
      scheduler.Start();

      int completed = 0, failed = 0;
      std::uint64_t corrupted = 0, detected = 0, undetected = 0;
      std::vector<double> latencies;
      for (auto& future : futures) {
        try {
          const server::QueryResult result = future.get();
          ++completed;
          corrupted += result.report.corrupted_commands;
          detected += result.report.corruption_detected;
          undetected += result.report.corruption_undetected;
          latencies.push_back(result.sim_latency());
        } catch (const kf::Error&) {
          ++failed;
        }
      }

      const double p95 = Percentile(latencies, 95.0);
      const double completed_fraction =
          static_cast<double>(completed) / kQueries;
      const std::string arm_rate =
          std::string(arm.name) + "@" + TablePrinter::Num(rate * 100.0, 0) +
          "%";
      if (rate == 0.0 && std::string(arm.name) == "off") p95_off_clean = p95;
      if (rate == 0.0 && std::string(arm.name) == "checksum") {
        p95_checksum_clean = p95;
      }
      if (rate == 0.05 && std::string(arm.name) == "audit") {
        detection_at_5 = corrupted > 0 ? static_cast<double>(detected) /
                                             static_cast<double>(corrupted)
                                       : 1.0;
        completion_at_5 = completed_fraction;
      }

      Record("p95_latency_" + std::string(arm.name), "s", rate, p95);
      Record("undetected_" + std::string(arm.name), "commands", rate,
             static_cast<double>(undetected));
      table.AddRow({arm.name, TablePrinter::Num(rate * 100.0, 0) + "%",
                    std::to_string(completed) + "/" + std::to_string(kQueries),
                    std::to_string(corrupted), std::to_string(detected),
                    std::to_string(undetected), TablePrinter::Num(p95, 4)});
    }
  }
  table.Print();

  const double overhead =
      p95_off_clean > 0 ? p95_checksum_clean / p95_off_clean : 0.0;
  Summary("checksum_overhead_p95", overhead, obs::Direction::kLowerIsBetter,
          "x");
  Summary("detection_rate_at_5pct", detection_at_5,
          obs::Direction::kHigherIsBetter, "");
  Summary("completion_rate_at_5pct", completion_at_5,
          obs::Direction::kHigherIsBetter, "");
  PrintSummaryLine("checksum-on p95 at 0% corruption: " +
                   TablePrinter::Num(overhead, 3) +
                   "x checksum-off (target <= 1.05x)");
  PrintSummaryLine("detection at 5% corruption: " +
                   TablePrinter::Num(detection_at_5 * 100.0, 1) +
                   "% of corrupted commands caught");
  PrintSummaryLine("completion at 5% corruption: " +
                   TablePrinter::Num(completion_at_5 * 100.0, 1) +
                   "% of queries served");
  return Finish();
}
