// Server throughput: concurrent query serving with cross-query fusion.
//
// Models a dashboard-style serving workload: N concurrent clients each keep
// one select-chain query over a shared relation in flight, round after
// round. The QueryScheduler batches each round's compatible queries through
// MergeGraphs, so the shared scan crosses PCIe once per round instead of
// once per query — queries/sec scales with client count while serialized
// execution stays flat.
//
// All gated numbers come from the scheduler's virtual device clock
// (deterministic: single worker, paused start, round-robin submission), so
// the committed baseline reproduces exactly at the same --scale. Wall-clock
// numbers are printed for context but never recorded.
//
//   queries/sec vs clients     simulated qps at 1/2/4/8 concurrent clients
//   p50/p95 latency vs clients simulated submit->complete latency
//   speedup_vs_serial_8_clients  scheduler qps / one-at-a-time qps (>= 1.5)
//   plan_cache_hit_rate          repeated-template workload (> 0.9)
#include <algorithm>
#include <chrono>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "server/query_scheduler.h"

namespace {

using namespace kf;
using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::Schema;

// One client's query template: a two-step select chain over the shared
// relation. Thresholds differ per client, so merged batches exercise the
// result splitter with structurally distinct (but source-sharing) graphs.
core::OpGraph ClientQuery(std::uint64_t rows, int client) {
  core::OpGraph g;
  const core::NodeId src =
      g.AddSource("events", Schema{{"v", DataType::kInt32}}, rows);
  const std::int64_t hi = (std::int64_t{1} << 30) + client * 1024;
  const std::int64_t lo = (std::int64_t{1} << 29) - client * 4096;
  const core::NodeId first = g.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(hi)),
                           "recent" + std::to_string(client)),
      src);
  g.AddOperator(
      OperatorDesc::Select(Expr::Ge(Expr::FieldRef(0), Expr::Lit(lo)),
                           "hot" + std::to_string(client)),
      first);
  return g;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kf::bench;
  Init(argc, argv, "server_throughput");
  PrintHeader("Server throughput: concurrent clients, cross-query fusion",
              "serving-layer extension of paper Section III-A (cross-query "
              "kernel fusion)");

  const std::uint64_t rows = Scaled(500'000);
  const relational::Table events = core::MakeUniformInt32Table(rows);
  constexpr int kRounds = 5;

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);

  TablePrinter table({"clients", "queries", "sim qps", "serial qps", "speedup",
                      "p50 lat (s)", "p95 lat (s)", "wall (s)"});

  double speedup_at_8 = 0.0;
  for (const int clients : {1, 2, 4, 8}) {
    // Per-client solo makespans -> the one-at-a-time serialized baseline.
    double serialized_seconds = 0.0;
    std::vector<server::QueryRequest> templates;
    for (int c = 0; c < clients; ++c) {
      server::QueryRequest request;
      request.graph = ClientQuery(rows, c);
      request.sources.emplace(request.graph.Sources()[0], events);
      request.options.strategy = core::Strategy::kFused;
      request.merge_class = "dashboard";
      const core::ExecutionReport solo = executor.Execute(
          request.graph, request.sources, request.options);
      serialized_seconds += solo.makespan * kRounds;
      templates.push_back(std::move(request));
    }

    // Deterministic serving run: single worker, paused start, round-robin
    // submission — each round's queries form one merged batch.
    server::SchedulerOptions options;
    options.worker_count = 1;
    options.start_paused = true;
    options.max_batch = static_cast<std::size_t>(clients);
    options.max_queue_depth = static_cast<std::size_t>(clients) * kRounds;
    server::QueryScheduler scheduler(device, options);

    const auto wall_start = std::chrono::steady_clock::now();
    std::vector<std::future<server::QueryResult>> futures;
    for (int round = 0; round < kRounds; ++round) {
      for (int c = 0; c < clients; ++c) {
        futures.push_back(scheduler.Submit(templates[c]));
      }
    }
    scheduler.Start();

    std::vector<double> latencies;
    latencies.reserve(futures.size());
    for (auto& future : futures) {
      latencies.push_back(future.get().sim_latency());
    }
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    const double total_queries = static_cast<double>(futures.size());
    const double sim_qps = total_queries / scheduler.sim_clock();
    const double serial_qps = total_queries / serialized_seconds;
    const double speedup = sim_qps / serial_qps;
    if (clients == 8) speedup_at_8 = speedup;
    const double p50 = Percentile(latencies, 50.0);
    const double p95 = Percentile(latencies, 95.0);

    Record("qps_vs_clients", "queries/s", clients, sim_qps);
    Record("p50_latency_vs_clients", "s", clients, p50);
    Record("p95_latency_vs_clients", "s", clients, p95);
    table.AddRow({std::to_string(clients), std::to_string(futures.size()),
                  TablePrinter::Num(sim_qps, 1), TablePrinter::Num(serial_qps, 1),
                  TablePrinter::Num(speedup, 2) + "x",
                  TablePrinter::Num(p50, 4), TablePrinter::Num(p95, 4),
                  TablePrinter::Num(wall_seconds, 2)});
  }
  table.Print();

  // Repeated-template workload: one template, many arrivals, no batching —
  // every execution after the first reuses the cached fusion plan.
  server::SchedulerOptions cache_options;
  cache_options.worker_count = 1;
  cache_options.start_paused = true;
  cache_options.max_batch = 1;
  constexpr int kRepeats = 50;
  cache_options.max_queue_depth = kRepeats;
  server::QueryScheduler cache_scheduler(device, cache_options);
  server::QueryRequest repeated;
  repeated.graph = ClientQuery(rows, 0);
  repeated.sources.emplace(repeated.graph.Sources()[0], events);
  repeated.options.strategy = core::Strategy::kFused;
  std::vector<std::future<server::QueryResult>> repeats;
  for (int i = 0; i < kRepeats; ++i) {
    repeats.push_back(cache_scheduler.Submit(repeated));
  }
  cache_scheduler.Start();
  for (auto& future : repeats) future.get();
  const double hit_rate = cache_scheduler.plan_cache().HitRate();

  Summary("speedup_vs_serial_8_clients", speedup_at_8,
          obs::Direction::kHigherIsBetter, "x");
  Summary("plan_cache_hit_rate", hit_rate, obs::Direction::kHigherIsBetter, "");
  PrintSummaryLine("8 concurrent clients: " + TablePrinter::Num(speedup_at_8, 2) +
                   "x the serialized queries/sec (target >= 1.5x)");
  PrintSummaryLine("plan-cache hit rate on repeated template: " +
                   TablePrinter::Num(hit_rate * 100.0, 1) + "% (target > 90%)");
  return Finish();
}
