// Fig 18(b) — TPC-H Q21: not optimized vs fusion vs fusion+fission, plus the
// fused-block-only speedup (paper: 1.22x across the fusable operators).
#include "bench/bench_util.h"
#include "tpch/q21.h"

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  using core::Strategy;
  Init(argc, argv, "fig18b_tpch_q21");
  PrintHeader("Fig 18(b): TPC-H Q21",
              "paper: 13.2% total improvement — smaller than Q1 because the "
              "SORTs bound what fusion can reach; fusable block alone 1.22x");

  tpch::TpchConfig config;
  config.order_count = std::max(500, static_cast<int>(20000 * Scale()));
  config.supplier_count = std::max(100, static_cast<int>(500 * Scale()));
  const tpch::TpchData data = MakeTpchData(config);
  tpch::QueryPlan plan = BuildQ21Plan(data);
  const double factor = 6'000'000.0 / static_cast<double>(data.lineitem.row_count());
  const auto rows = ScaledRowCounts(plan.graph, plan.sources, factor);

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  auto run = [&](Strategy strategy) {
    core::ExecutorOptions options;
    options.strategy = strategy;
    options.fusion.register_budget = 63;
    return executor.EstimateOnly(plan.graph, rows, options);
  };
  const auto serial = run(Strategy::kSerial);
  const auto fused = run(Strategy::kFused);
  const auto both = run(Strategy::kFusedFission);

  TablePrinter table({"Variant", "Normalized time", "Compute", "PCIe", "Launches"});
  auto add = [&](const char* name, double x, const core::ExecutionReport& r) {
    table.AddRow({name, TablePrinter::Num(r.makespan / serial.makespan, 3),
                  FormatTime(r.compute_time),
                  FormatTime(r.input_output_time + r.round_trip_time),
                  std::to_string(r.kernel_launches)});
    Record("normalized_time", "x", x, r.makespan / serial.makespan);
  };
  add("Not optimized", 0, serial);
  add("Fusion", 1, fused);
  add("Fusion + Fission", 2, both);
  table.Print();

  PrintSummaryLine("fusion+fission total improvement: " +
                   TablePrinter::Num((1 - both.makespan / serial.makespan) * 100, 1) +
                   "% (paper: 13.2%)");

  // Fused-block-only speedup, summed over every fused cluster.
  core::FusionOptions fusion_options;
  fusion_options.register_budget = 63;
  const core::FusionPlan fusion_plan = PlanFusion(plan.graph, fusion_options);
  core::OperatorCostModel cost_model;
  const sim::KernelCostModel& kernel_model = device.cost_model();
  double unfused_blocks = 0, fused_blocks = 0;
  for (const core::FusionCluster& cluster : fusion_plan.clusters) {
    if (!cluster.fused()) continue;
    std::vector<core::RealizedSizes> member_sizes;
    for (core::NodeId id : cluster.nodes) {
      const core::OpNode& node = plan.graph.node(id);
      core::RealizedSizes sizes;
      sizes.input_rows = rows.at(node.inputs[0]);
      sizes.input_row_bytes = plan.graph.node(node.inputs[0]).schema.row_width_bytes();
      sizes.output_rows = rows.at(id);
      sizes.output_row_bytes = node.schema.row_width_bytes();
      if (node.inputs.size() > 1) {
        sizes.build_bytes = rows.at(node.inputs[1]) *
                            plan.graph.node(node.inputs[1]).schema.row_width_bytes();
      }
      member_sizes.push_back(sizes);
      for (const auto& p : cost_model.UnfusedProfiles(node, sizes)) {
        unfused_blocks += kernel_model.Cost(p).solo_duration;
      }
    }
    for (const auto& p :
         cost_model.FusedProfiles(plan.graph, cluster, member_sizes)) {
      fused_blocks += kernel_model.Cost(p).solo_duration;
    }
  }
  PrintSummaryLine("fusable blocks alone: " +
                   TablePrinter::Num(unfused_blocks / fused_blocks, 2) +
                   "x (paper: 1.22x)");
  PrintSummaryLine("fusion plan: " + std::to_string(fusion_plan.clusters.size()) +
                   " clusters, " + std::to_string(fusion_plan.fused_cluster_count()) +
                   " fused — the SORT/AGGREGATE boundaries cap the benefit");
  Summary("total_improvement_pct", (1 - both.makespan / serial.makespan) * 100);
  Summary("fused_block_speedup", unfused_blocks / fused_blocks);
  Summary("fused_cluster_count",
          static_cast<double>(fusion_plan.fused_cluster_count()),
          obs::Direction::kTwoSided);
  return Finish();
}
