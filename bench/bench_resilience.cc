// Resilience under injected device faults: throughput and tail latency as
// the transient-fault rate rises, and how queries finish (clean, retried,
// degraded to the host engine, or failed typed).
//
// Models an unreliable device: every copy/kernel command fails with
// probability r, streams stall with probability r (8x slowdown), and device
// reservations spuriously fail at r/4. The scheduler's recovery ladder —
// segment retries with backoff, per-cluster host degradation, whole-query
// retries, circuit breaker — keeps answers correct (byte-identical) while
// simulated throughput degrades smoothly instead of collapsing.
//
// All gated numbers come from the virtual device clock (single worker,
// paused start, solo batches, fixed fault seed), so the committed baseline
// reproduces exactly at the same --scale.
//
//   qps vs fault rate            simulated queries/sec at r in {0,5,10,20}%
//   p95 latency vs fault rate    simulated submit->complete latency
//   completed/degraded fraction  how queries finished at each rate
//   completed_fraction_at_10pct  >= 0.9: the paper-level resilience target
#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "server/query_scheduler.h"
#include "sim/fault_injector.h"

namespace {

using namespace kf;
using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::Schema;

// One query: a two-step select chain over the shared relation, thresholds
// varied per query so plans differ structurally.
core::OpGraph Query(std::uint64_t rows, int index) {
  core::OpGraph g;
  const core::NodeId src =
      g.AddSource("events", Schema{{"v", DataType::kInt32}}, rows);
  const std::int64_t hi = (std::int64_t{1} << 30) + index * 2048;
  const std::int64_t lo = (std::int64_t{1} << 29) - index * 1024;
  const core::NodeId first = g.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(hi)),
                           "recent" + std::to_string(index)),
      src);
  g.AddOperator(OperatorDesc::Select(
                    Expr::Ge(Expr::FieldRef(0), Expr::Lit(lo)),
                    "hot" + std::to_string(index)),
                first);
  return g;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kf::bench;
  Init(argc, argv, "resilience");
  PrintHeader("Resilience: serving under injected device faults",
              "robustness extension of the stream-pool runtime (paper Table "
              "IV); fault model in docs/resilience.md");

  const std::uint64_t rows = Scaled(500'000);
  const relational::Table events = core::MakeUniformInt32Table(rows);
  constexpr int kQueries = 40;

  sim::DeviceSimulator device;

  TablePrinter table({"fault rate", "completed", "degraded", "failed",
                      "sim qps", "p50 lat (s)", "p95 lat (s)"});

  double completed_at_10 = 0.0;
  double p95_clean = 0.0, p95_at_10 = 0.0;
  for (const double rate : {0.0, 0.05, 0.10, 0.20}) {
    sim::FaultConfig config;
    config.seed = 2026;
    config.copy_fault_rate = rate;
    config.kernel_fault_rate = rate;
    config.stall_rate = rate;
    config.oom_rate = rate / 4.0;
    sim::FaultInjector injector(config);

    server::SchedulerOptions options;
    options.worker_count = 1;  // deterministic batch order
    options.start_paused = true;
    options.max_batch = 1;  // solo batches: per-query outcomes stay pinned
    options.max_queue_depth = kQueries;
    options.fault_injector = &injector;
    options.query_retry_limit = 3;
    server::QueryScheduler scheduler(device, options);

    std::vector<std::future<server::QueryResult>> futures;
    for (int i = 0; i < kQueries; ++i) {
      server::QueryRequest request;
      request.graph = Query(rows, i);
      request.sources.emplace(request.graph.Sources()[0], events);
      request.options.strategy = core::Strategy::kFusedFission;
      request.options.fission_segments = 8;
      futures.push_back(scheduler.Submit(std::move(request)));
    }
    scheduler.Start();

    int completed = 0, degraded = 0, failed = 0;
    std::vector<double> latencies;
    for (auto& future : futures) {
      try {
        const server::QueryResult result = future.get();
        ++completed;
        if (result.degraded || result.ran_on_host) ++degraded;
        latencies.push_back(result.sim_latency());
      } catch (const kf::Error&) {
        ++failed;
      }
    }

    const double completed_fraction =
        static_cast<double>(completed) / kQueries;
    const double degraded_fraction = static_cast<double>(degraded) / kQueries;
    const double qps = scheduler.sim_clock() > 0
                           ? static_cast<double>(completed) /
                                 scheduler.sim_clock()
                           : 0.0;
    const double p50 = Percentile(latencies, 50.0);
    const double p95 = Percentile(latencies, 95.0);
    if (rate == 0.0) p95_clean = p95;
    if (rate == 0.10) {
      completed_at_10 = completed_fraction;
      p95_at_10 = p95;
    }

    Record("qps_vs_fault_rate", "queries/s", rate, qps);
    Record("p95_latency_vs_fault_rate", "s", rate, p95);
    Record("completed_fraction_vs_fault_rate", "", rate, completed_fraction);
    Record("degraded_fraction_vs_fault_rate", "", rate, degraded_fraction);
    table.AddRow({TablePrinter::Num(rate * 100.0, 0) + "%",
                  std::to_string(completed) + "/" + std::to_string(kQueries),
                  std::to_string(degraded), std::to_string(failed),
                  TablePrinter::Num(qps, 1), TablePrinter::Num(p50, 4),
                  TablePrinter::Num(p95, 4)});
  }
  table.Print();

  const double p95_inflation = p95_clean > 0 ? p95_at_10 / p95_clean : 0.0;
  Summary("completed_fraction_at_10pct", completed_at_10,
          obs::Direction::kHigherIsBetter, "");
  Summary("p95_inflation_at_10pct", p95_inflation,
          obs::Direction::kLowerIsBetter, "x");
  PrintSummaryLine("completed at 10% fault rate: " +
                   TablePrinter::Num(completed_at_10 * 100.0, 1) +
                   "% (target >= 90%)");
  PrintSummaryLine("p95 latency inflation at 10% faults: " +
                   TablePrinter::Num(p95_inflation, 2) + "x the clean run");
  return Finish();
}
