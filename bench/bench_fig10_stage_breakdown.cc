// Fig 10 — the compute part split into the filter CUDA kernel (partition +
// filter + buffer) and the gather CUDA kernel, fused vs unfused, normalized
// to the unfused total.
#include "bench/bench_util.h"
#include "core/operator_cost.h"

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  Init(argc, argv, "fig10_stage_breakdown");
  PrintHeader("Fig 10: per-kernel breakdown of the compute part",
              "paper: fused filter 1.57x faster than the two filters, fused "
              "gather 3.03x faster than the two gathers");

  sim::DeviceSimulator device;
  core::OperatorCostModel cost_model;
  const sim::KernelCostModel& kernel_model = device.cost_model();

  TablePrinter table({"Elements", "filter1", "gather1", "filter2", "gather2",
                      "fused filter", "fused gather"});
  double filter_gain = 0, gather_gain = 0;
  int rows = 0;
  for (std::uint64_t n :
       {std::uint64_t{4'194'304}, std::uint64_t{205'520'896}, std::uint64_t{415'236'096}}) {
    core::SelectChain chain = core::MakeSelectChain(n, std::vector<double>{0.5, 0.5});
    const core::FusionPlan plan = PlanFusion(chain.graph);

    auto sizes_of = [&](std::size_t step) {
      core::RealizedSizes s;
      s.input_rows = chain.expected_rows.at(step == 0 ? chain.source
                                                      : chain.selects[step - 1]);
      s.input_row_bytes = 4;
      s.output_rows = chain.expected_rows.at(chain.selects[step]);
      s.output_row_bytes = 4;
      return s;
    };
    auto time_of = [&](const sim::KernelProfile& p) {
      return kernel_model.Cost(p).solo_duration;
    };
    const auto sel1 = cost_model.UnfusedProfiles(chain.graph.node(chain.selects[0]),
                                                 sizes_of(0));
    const auto sel2 = cost_model.UnfusedProfiles(chain.graph.node(chain.selects[1]),
                                                 sizes_of(1));
    const auto fused_profiles = cost_model.FusedProfiles(
        chain.graph, plan.clusters[0], {sizes_of(0), sizes_of(1)});
    const double f1 = time_of(sel1[0]), g1 = time_of(sel1[1]);
    const double f2 = time_of(sel2[0]), g2 = time_of(sel2[1]);
    const double ff = time_of(fused_profiles[0]), fg = time_of(fused_profiles[1]);
    const double total = f1 + g1 + f2 + g2;
    auto norm = [&](double t) { return TablePrinter::Num(t / total, 3); };
    table.AddRow({Millions(n), norm(f1), norm(g1), norm(f2), norm(g2), norm(ff),
                  norm(fg)});
    filter_gain += (f1 + f2) / ff;
    gather_gain += (g1 + g2) / fg;
    Record("fused_filter_speedup", "x", static_cast<double>(n), (f1 + f2) / ff);
    Record("fused_gather_speedup", "x", static_cast<double>(n), (g1 + g2) / fg);
    ++rows;
  }
  table.Print();
  std::cout << "\n(each cell normalized to the unfused compute total of its row)\n";
  PrintSummaryLine("fused filter speedup over separate filters: " +
                   TablePrinter::Num(filter_gain / rows, 2) + "x (paper: 1.57x)");
  PrintSummaryLine("fused gather speedup over separate gathers: " +
                   TablePrinter::Num(gather_gain / rows, 2) + "x (paper: 3.03x)");
  Summary("fused_filter_speedup", filter_gain / rows);
  Summary("fused_gather_speedup", gather_gain / rows);
  return Finish();
}
