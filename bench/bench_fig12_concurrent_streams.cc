// Fig 12 — concurrent kernel execution via streams is NOT always a win:
//   no stream (old): one SELECT over all N elements, full launch geometry;
//   no stream (new): the same but with half the CTAs and threads;
//   stream:          two independent N/2 SELECTs with the halved geometry,
//                    run concurrently in two streams.
// Concurrency helps while the kernels are too small to saturate the device
// and hurts once they are not — the case distinction kernel fission must make.
#include "bench/bench_util.h"
#include "core/operator_cost.h"
#include "sim/timeline.h"

namespace {

using namespace kf;

// The staged SELECT needs a global synchronization between its filter and
// gather kernels (the exclusive scan of per-CTA match counts, Fig 3). On the
// paper's stack that sync is host-mediated; it serializes within a stream
// but overlaps across streams — the reason concurrent streams win while
// kernels are short.
constexpr kf::SimTime kScanSyncOverhead = 50.0 * kf::kMicrosecond;

// Simulated makespan of per-stream sequences of (filter, sync, gather).
double RunKernels(const sim::DeviceSimulator& device,
                  const std::vector<std::pair<int, sim::KernelProfile>>& kernels) {
  sim::Timeline timeline = device.NewTimeline();
  int previous_stream = -1;
  for (const auto& [stream, profile] : kernels) {
    if (stream == previous_stream) {
      // Second kernel of a staged pair: host-mediated scan first.
      sim::CommandSpec sync;
      sync.kind = sim::CommandKind::kHostCompute;
      sync.duration = kScanSyncOverhead;
      sync.label = "scan-sync";
      timeline.AddCommand(stream, sync);
    }
    timeline.AddCommand(stream, device.MakeKernel(profile));
    previous_stream = stream;
  }
  return timeline.Run().makespan;
}

std::vector<sim::KernelProfile> SelectProfiles(const core::OperatorCostModel& model,
                                               const core::OpGraph& graph,
                                               core::NodeId select, std::uint64_t n,
                                               int cta, int threads) {
  core::RealizedSizes sizes;
  sizes.input_rows = n;
  sizes.input_row_bytes = 4;
  sizes.output_rows = n / 2;
  sizes.output_row_bytes = 4;
  auto profiles = model.UnfusedProfiles(graph.node(select), sizes);
  for (auto& p : profiles) {
    p.cta_count = cta;
    p.threads_per_cta = threads;
  }
  return profiles;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  Init(argc, argv, "fig12_concurrent_streams");
  PrintHeader("Fig 12: concurrently executing two SELECTs",
              "paper: 'stream' wins only below ~8M elements; above that a "
              "single fully-provisioned kernel ('old') is best and the "
              "halved kernel ('new') is worst");

  sim::DeviceSimulator device;
  core::OperatorCostModel cost_model;
  core::SelectChain chain = core::MakeSelectChain(100, std::vector<double>{0.5});

  std::uint64_t crossover = 0;
  for (auto [label, sweep] :
       {std::pair{"full range", PaperSweep()},
        std::pair{"small range (paper's zoom)",
                  std::vector<std::uint64_t>{4'000'000, 6'000'000, 9'000'000,
                                             14'000'000, 19'000'000, 24'000'000,
                                             34'000'000}}}) {
    std::cout << "-- " << label << " --\n";
    TablePrinter table({"Elements", "stream", "no stream (new)", "no stream (old)"});
    for (std::uint64_t n : sweep) {
      const auto old_profiles =
          SelectProfiles(cost_model, chain.graph, chain.selects[0], n, 448, 256);
      const auto new_profiles =
          SelectProfiles(cost_model, chain.graph, chain.selects[0], n, 224, 128);
      const auto half_profiles =
          SelectProfiles(cost_model, chain.graph, chain.selects[0], n / 2, 224, 128);

      std::vector<std::pair<int, sim::KernelProfile>> old_run, new_run, stream_run;
      for (const auto& p : old_profiles) old_run.emplace_back(0, p);
      for (const auto& p : new_profiles) new_run.emplace_back(0, p);
      for (int s : {0, 1}) {
        for (const auto& p : half_profiles) stream_run.emplace_back(s, p);
      }
      const double bytes = static_cast<double>(n) * 4;
      const double t_old = bytes / RunKernels(device, old_run) / kGB;
      const double t_new = bytes / RunKernels(device, new_run) / kGB;
      const double t_stream = bytes / RunKernels(device, stream_run) / kGB;
      table.AddRow({Millions(n), TablePrinter::Num(t_stream, 2),
                    TablePrinter::Num(t_new, 2), TablePrinter::Num(t_old, 2)});
      Record("stream", "GB/s", static_cast<double>(n), t_stream);
      Record("no_stream_new", "GB/s", static_cast<double>(n), t_new);
      Record("no_stream_old", "GB/s", static_cast<double>(n), t_old);
      if (crossover == 0 && t_stream < t_old) crossover = n;
    }
    table.Print();
    std::cout << "\n";
  }
  PrintSummaryLine("stream > new everywhere (concurrency recovers the halved "
                   "geometry's loss)");
  if (crossover != 0) {
    PrintSummaryLine("old overtakes stream at ~" + Millions(crossover) +
                     " elements (paper: ~8M)");
  } else {
    PrintSummaryLine("old overtakes stream beyond the sweep (paper: ~8M)");
  }
  Summary("crossover_elements", static_cast<double>(crossover),
          obs::Direction::kTwoSided, "elements");
  return Finish();
}
