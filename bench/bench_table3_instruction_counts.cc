// Table III — PTX-style instruction counts of the two-threshold filter,
// separate vs fused, unoptimized (-O0) vs optimized (-O3), measured over the
// mini IR with the real optimizer pipeline.
#include "bench/bench_util.h"
#include "core/expr_lower.h"
#include "ir/kernel_gen.h"
#include "ir/passes.h"

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  using relational::Expr;
  Init(argc, argv, "table3_instruction_counts");
  PrintHeader("Table III: impact of kernel fusion on compiler optimization",
              "paper: unfused 5x2 -> 3x2 (-40%), fused 10 -> 3 (-70%)");

  // Direct kernel generation (the paper's illustrative example).
  ir::Function k1 = ir::BuildSelectKernel("k1", {ir::CompareKind::kLt, 1000});
  ir::Function k2 = ir::BuildSelectKernel("k2", {ir::CompareKind::kLt, 500});
  ir::Function fused = ir::BuildFusedSelectKernel(
      "fused", {{ir::CompareKind::kLt, 1000}, {ir::CompareKind::kLt, 500}});
  const std::size_t unfused_o0 = k1.InstructionCount() + k2.InstructionCount();
  const std::size_t fused_o0 = fused.InstructionCount();
  ir::OptimizeO3(k1);
  ir::OptimizeO3(k2);
  ir::OptimizeO3(fused);
  const std::size_t unfused_o3 = k1.InstructionCount() + k2.InstructionCount();
  const std::size_t fused_o3 = fused.InstructionCount();

  TablePrinter table({"Statement", "Inst# (O0)", "Inst# (O3)", "Reduction"});
  auto reduction = [](std::size_t before, std::size_t after) {
    return TablePrinter::Num(
               100.0 * (1.0 - static_cast<double>(after) / static_cast<double>(before)),
               0) + "%";
  };
  table.AddRow({"if(d<T1); if(d<T2)   [2 kernels]", std::to_string(unfused_o0),
                std::to_string(unfused_o3), reduction(unfused_o0, unfused_o3)});
  table.AddRow({"if(d<T1 && d<T2)     [fused]", std::to_string(fused_o0),
                std::to_string(fused_o3), reduction(fused_o0, fused_o3)});
  table.Print();

  std::cout << "\nOptimized fused kernel body:\n" << fused.ToString();

  // The same experiment through the relational-expression lowering path
  // (what the compiler described in Section III-C would emit).
  const std::vector<Expr> predicates = {
      Expr::Lt(Expr::FieldRef(0), Expr::Lit(1000)),
      Expr::Lt(Expr::FieldRef(0), Expr::Lit(500)),
  };
  ir::Function lowered =
      core::LowerFusedSelectFilters("fused_from_expr", predicates);
  const std::size_t lowered_o0 = lowered.InstructionCount();
  ir::OptimizeO3(lowered);
  PrintSummaryLine("Expr-lowered fused filter: " + std::to_string(lowered_o0) +
                   " -> " + std::to_string(lowered.InstructionCount()) +
                   " instructions under O3");
  PrintSummaryLine("fusion enlarges the optimizer's payoff (" +
                   reduction(fused_o0, fused_o3) + " vs " +
                   reduction(unfused_o0, unfused_o3) + "), as in the paper");
  Summary("unfused_o3_instructions", static_cast<double>(unfused_o3),
          obs::Direction::kTwoSided);
  Summary("fused_o3_instructions", static_cast<double>(fused_o3),
          obs::Direction::kTwoSided);
  Summary("fused_reduction_pct",
          100.0 * (1.0 - static_cast<double>(fused_o3) /
                             static_cast<double>(fused_o0)));
  return Finish();
}
