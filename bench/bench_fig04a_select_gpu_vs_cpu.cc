// Fig 4(a) — staged SELECT throughput, simulated GPU (PCIe excluded) vs the
// modeled 16-thread CPU comparator, at 10% / 50% / 90% selectivity.
#include "bench/bench_util.h"
#include "cpu/cpu_select.h"

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  Init(argc, argv, "fig04a_select_gpu_vs_cpu");
  PrintHeader("Fig 4(a): SELECT throughput, GPU vs CPU",
              "GPU ~2.9x/8.8x/8.4x faster at 10/50/90% selectivity; lower "
              "selectivity -> higher throughput on both");

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  cpu::CpuSelectModel cpu_model;

  const std::vector<double> selectivities = {0.10, 0.50, 0.90};
  TablePrinter table({"Elements", "GPU 10%", "GPU 50%", "GPU 90%", "CPU 10%",
                      "CPU 50%", "CPU 90%"});
  std::map<double, double> speedup_sum;
  int rows = 0;
  for (std::uint64_t n : PaperSweep()) {
    std::vector<std::string> row{Millions(n)};
    std::map<double, double> gpu;
    for (double s : selectivities) {
      core::SelectChain chain = core::MakeSelectChain(n, std::vector<double>{s});
      const auto report = RunChain(executor, chain, core::Strategy::kSerial);
      // PCIe excluded, as in the paper's figure: kernel time only.
      gpu[s] = ThroughputGBs(chain.input_bytes(), report.compute_time);
      row.push_back(TablePrinter::Num(gpu[s], 2));
      Record("gpu_" + TablePrinter::Num(s * 100, 0) + "pct", "GB/s",
             static_cast<double>(n), gpu[s]);
    }
    for (double s : selectivities) {
      const double cpu_gbs = cpu_model.ThroughputGBs(n, s);
      row.push_back(TablePrinter::Num(cpu_gbs, 2));
      speedup_sum[s] += gpu[s] / cpu_gbs;
      Record("cpu_" + TablePrinter::Num(s * 100, 0) + "pct", "GB/s",
             static_cast<double>(n), cpu_gbs);
    }
    table.AddRow(std::move(row));
    ++rows;
  }
  table.Print();
  std::cout << "\n(all columns in GB/s of input data)\n";
  for (double s : selectivities) {
    PrintSummaryLine("average GPU/CPU speedup at " +
                     TablePrinter::Num(s * 100, 0) + "%: " +
                     TablePrinter::Num(speedup_sum[s] / rows, 2) +
                     "x (paper: " +
                     (s == 0.10 ? "2.88x" : s == 0.50 ? "8.80x" : "8.35x") + ")");
    Summary("gpu_cpu_speedup_" + TablePrinter::Num(s * 100, 0) + "pct",
            speedup_sum[s] / rows);
  }
  return Finish();
}
