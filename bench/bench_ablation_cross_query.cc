// Ablation — cross-query kernel fusion (paper Section III-A: operators from
// different queries can be fused). Two independent queries scan the same
// 200M-element relation; merging their graphs lets the planner fuse both
// into one shared-scan kernel, halving PCIe traffic.
#include "bench/bench_util.h"
#include "core/graph_merge.h"

namespace {

using namespace kf;
using relational::AggregateSpec;
using relational::DataType;
using relational::Expr;
using relational::OperatorDesc;
using relational::Schema;

core::OpGraph FilterQuery(std::uint64_t rows) {
  core::OpGraph g;
  const core::NodeId src =
      g.AddSource("events", Schema{{"v", DataType::kInt32}}, rows);
  const core::NodeId s1 = g.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(1 << 30)), "recent"),
      src);
  g.AddOperator(
      OperatorDesc::Select(Expr::Lt(Expr::FieldRef(0), Expr::Lit(1 << 29)), "local"),
      s1);
  return g;
}

core::OpGraph StatsQuery(std::uint64_t rows) {
  core::OpGraph g;
  const core::NodeId src =
      g.AddSource("events", Schema{{"v", DataType::kInt32}}, rows);
  const core::NodeId sel = g.AddOperator(
      OperatorDesc::Select(Expr::Ge(Expr::FieldRef(0), Expr::Lit(1 << 28)), "big"),
      src);
  g.AddOperator(
      OperatorDesc::Aggregate({}, {AggregateSpec{AggregateSpec::Func::kCount, 0, "n"},
                                   AggregateSpec{AggregateSpec::Func::kAvg, 0, "mean"}}),
      sel);
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  Init(argc, argv, "ablation_cross_query");
  PrintHeader("Ablation: kernel fusion across queries",
              "paper Section III-A — shared-scan fusion of independent queries");

  const std::uint64_t rows = Scaled(200'000'000);
  const core::OpGraph filter_query = FilterQuery(rows);
  const core::OpGraph stats_query = StatsQuery(rows);
  const core::MergeResult merged = MergeGraphs(filter_query, stats_query);

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  core::ExecutorOptions options;
  options.strategy = core::Strategy::kFused;

  // Row-count overrides with the uniform-domain selectivities.
  auto run = [&](const core::OpGraph& graph) {
    std::map<core::NodeId, std::uint64_t> counts;
    for (core::NodeId id : graph.TopologicalOrder()) {
      const core::OpNode& node = graph.node(id);
      if (node.is_source) {
        counts[id] = rows;
      } else if (node.desc.kind == relational::OpKind::kAggregate) {
        counts[id] = 1;
      } else {
        counts[id] = counts.at(node.inputs[0]) / 2;
      }
    }
    return executor.EstimateOnly(graph, counts, options);
  };

  const auto separate_a = run(filter_query);
  const auto separate_b = run(stats_query);
  const auto together = run(merged.graph);

  const core::FusionPlan plan = PlanFusion(merged.graph);
  TablePrinter table({"Execution", "Makespan", "H2D bytes", "Kernel launches"});
  table.AddRow({"query A alone", FormatTime(separate_a.makespan),
                FormatBytes(separate_a.h2d_bytes),
                std::to_string(separate_a.kernel_launches)});
  table.AddRow({"query B alone", FormatTime(separate_b.makespan),
                FormatBytes(separate_b.h2d_bytes),
                std::to_string(separate_b.kernel_launches)});
  table.AddRow({"A + B separately", FormatTime(separate_a.makespan + separate_b.makespan),
                FormatBytes(separate_a.h2d_bytes + separate_b.h2d_bytes),
                std::to_string(separate_a.kernel_launches + separate_b.kernel_launches)});
  table.AddRow({"A + B merged & fused", FormatTime(together.makespan),
                FormatBytes(together.h2d_bytes),
                std::to_string(together.kernel_launches)});
  table.Print();

  PrintSummaryLine("merged plan: " + std::to_string(plan.clusters.size()) +
                   " cluster(s) for both queries — one scan feeds everything");
  PrintSummaryLine("cross-query fusion saves " +
                   TablePrinter::Num(
                       (1.0 - together.makespan /
                                  (separate_a.makespan + separate_b.makespan)) * 100,
                       1) +
                   "% of the back-to-back time and " +
                   TablePrinter::Num(
                       (1.0 - static_cast<double>(together.h2d_bytes) /
                                  static_cast<double>(separate_a.h2d_bytes +
                                                      separate_b.h2d_bytes)) * 100,
                       1) +
                   "% of the PCIe upload bytes");
  Summary("time_saved_pct",
          (1.0 - together.makespan /
                     (separate_a.makespan + separate_b.makespan)) *
              100);
  Summary("h2d_bytes_saved_pct",
          (1.0 - static_cast<double>(together.h2d_bytes) /
                     static_cast<double>(separate_a.h2d_bytes +
                                         separate_b.h2d_bytes)) *
              100);
  Summary("merged_cluster_count", static_cast<double>(plan.clusters.size()),
          obs::Direction::kTwoSided);
  return Finish();
}
