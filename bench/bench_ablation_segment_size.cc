// Ablation — segment count (chunk granularity) for kernel fission: few
// segments leave pipeline fill/drain uncovered; many segments pay per-
// transfer latency and per-launch overhead.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  Init(argc, argv, "ablation_segment_size");
  PrintHeader("Ablation: fission segment count",
              "pipeline fill/drain vs per-segment overheads");

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);

  double last_best_segments = 0;
  for (std::uint64_t n : {Scaled(200'000'000), Scaled(2'000'000'000)}) {
    core::SelectChain chain = core::MakeSelectChain(n, std::vector<double>{0.5, 0.5});
    std::cout << "-- " << Millions(n) << " elements ("
              << FormatBytes(chain.input_bytes()) << " input) --\n";
    TablePrinter table({"Segments", "Makespan", "Throughput"});
    double best = 0;
    int best_segments = 0;
    for (int segments : {3, 6, 12, 24, 48, 96, 192}) {
      core::ExecutorOptions options;
      options.strategy = core::Strategy::kFusedFission;
      options.fission_segments = segments;
      const auto report =
          executor.EstimateOnly(chain.graph, chain.expected_rows, options);
      const double gbs = report.ThroughputGBs(chain.input_bytes());
      table.AddRow({std::to_string(segments), FormatTime(report.makespan),
                    FormatGBs(gbs)});
      Record("throughput_" + Millions(n), "GB/s", static_cast<double>(segments),
             gbs);
      if (gbs > best) {
        best = gbs;
        best_segments = segments;
      }
    }
    table.Print();
    PrintSummaryLine("best at " + std::to_string(best_segments) +
                     " segments for this size\n");
    last_best_segments = best_segments;
  }
  PrintSummaryLine("the optimum shifts up with data size: larger inputs "
                   "amortize per-segment overheads over more overlap");
  Summary("best_segments_large_input", last_best_segments,
          obs::Direction::kTwoSided, "segments");
  return Finish();
}
