// Ablation — heterogeneous placement of fused kernels (the paper's closing
// "ongoing research": running fused kernels on CPU and GPU via Ocelot).
// Sweeps the input size of a fused two-SELECT cluster and reports where the
// cost model places it and the modeled time on each engine.
#include "bench/bench_util.h"
#include "core/hetero.h"

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  Init(argc, argv, "ablation_hetero");
  PrintHeader("Ablation: CPU-or-GPU placement of fused kernels",
              "paper Section III-C closing paragraph (Ocelot translation)");

  sim::DeviceSimulator device;
  core::HeterogeneousScheduler scheduler(device);
  core::SelectChain chain = core::MakeSelectChain(1000, std::vector<double>{0.5, 0.5});
  const core::FusionPlan plan = PlanFusion(chain.graph);

  TablePrinter table({"Elements", "Host time", "Device time (incl PCIe)",
                      "Decision"});
  std::uint64_t crossover = 0;
  for (std::uint64_t n :
       {std::uint64_t{10'000}, std::uint64_t{100'000}, std::uint64_t{1'000'000},
        std::uint64_t{4'000'000}, std::uint64_t{16'000'000},
        std::uint64_t{64'000'000}, std::uint64_t{256'000'000}}) {
    std::vector<core::RealizedSizes> sizes = {
        core::RealizedSizes{n, 4, n / 2, 4, 0},
        core::RealizedSizes{n / 2, 4, n / 4, 4, 0}};
    const core::PlacementDecision d =
        scheduler.Decide(chain.graph, plan.clusters[0], sizes);
    table.AddRow({Millions(n), FormatTime(d.host_time), FormatTime(d.device_time),
                  ToString(d.placement)});
    Record("host_time", "s", static_cast<double>(n), d.host_time);
    Record("device_time", "s", static_cast<double>(n), d.device_time);
    if (crossover == 0 && d.placement == core::Placement::kDevice) crossover = n;
  }
  table.Print();
  PrintSummaryLine("the device wins from ~" + Millions(crossover) +
                   " elements; below that PCIe latency and transfer time "
                   "outweigh its 10x streaming advantage");
  PrintSummaryLine("this is the fully-utilize-both-processors decision the "
                   "paper leaves as future work, made concrete");
  Summary("device_crossover_elements", static_cast<double>(crossover),
          obs::Direction::kTwoSided, "elements");
  return Finish();
}
