// Ablation — stream count for kernel fission. The C2070 has two copy
// engines + compute, so the paper says "at least three streams are needed to
// fully utilize its concurrency capacity"; more streams add nothing.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace kf;
  using namespace kf::bench;
  Init(argc, argv, "ablation_stream_count");
  PrintHeader("Ablation: streams used by the fission pipeline",
              "paper Section IV-B: 3 streams saturate a 2-copy-engine device");

  sim::DeviceSimulator device;
  core::QueryExecutor executor(device);
  core::SelectChain chain =
      core::MakeSelectChain(Scaled(2'000'000'000ull), std::vector<double>{0.5, 0.5});

  TablePrinter table({"Streams", "Makespan", "Throughput", "vs serial"});
  core::ExecutorOptions serial_options;
  serial_options.strategy = core::Strategy::kSerial;
  const double serial =
      executor.EstimateOnly(chain.graph, chain.expected_rows, serial_options).makespan;
  double gain_at_3 = 0;
  for (int streams : {1, 2, 3, 4, 6, 8}) {
    core::ExecutorOptions options;
    options.strategy = core::Strategy::kFusedFission;
    options.stream_count = streams;
    options.fission_segments = std::max(12, streams * 4);
    const auto report =
        executor.EstimateOnly(chain.graph, chain.expected_rows, options);
    table.AddRow({std::to_string(streams), FormatTime(report.makespan),
                  FormatGBs(report.ThroughputGBs(chain.input_bytes())),
                  TablePrinter::Num(serial / report.makespan, 2) + "x"});
    Record("speedup_vs_serial", "x", static_cast<double>(streams),
           serial / report.makespan);
    if (streams == 3) gain_at_3 = serial / report.makespan;
  }
  table.Print();
  PrintSummaryLine("one stream = no overlap; two streams overlap one copy "
                   "direction; three saturate both DMA engines + compute; "
                   "beyond three the curve is flat (paper: same)");
  Summary("speedup_at_3_streams", gain_at_3);
  return Finish();
}
